//! Regenerates one of the paper's join figures (11-14, or the
//! random-organization tables summarized in Figure 15).
//!
//! Usage: fig11_14_joins [--db db1|db2] [--org class|random|comp]

use tq_bench::env;
use tq_workload::{DbShape, Organization};

fn main() {
    env::maybe_print_help(
        "Regenerates one of the paper's join figures (11-14, or the \
         random-organization tables summarized in Figure 15).",
        "fig11_14_joins [--db db1|db2] [--org class|random|comp|assoc]",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
            env::ENV_EXPLAIN,
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let shape = match arg("--db", "db1").as_str() {
        "db1" => DbShape::Db1,
        "db2" => DbShape::Db2,
        other => {
            eprintln!("unknown --db {other:?} (use db1|db2)");
            std::process::exit(2);
        }
    };
    let org = match arg("--org", "class").as_str() {
        "class" => Organization::ClassClustered,
        "random" => Organization::Randomized,
        "comp" | "composition" => Organization::Composition,
        "assoc" | "assoc-ordered" => Organization::AssociationOrdered,
        other => {
            eprintln!("unknown --org {other:?} (use class|random|comp|assoc)");
            std::process::exit(2);
        }
    };
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::joins::run_join_figure(shape, org, scale, jobs);
    println!("{}", tq_bench::figures::joins::print_join_figure(&fig));
    println!("{}", tq_statsdb::export::to_csv(fig.stats.all()));
    // Opt-in per-operator view: a counter table per run (rows sum to
    // the query-level Stat) plus the operator CSV export. Gated so the
    // default figure output stays byte-identical.
    if std::env::var_os("TQ_EXPLAIN").is_some() {
        println!("{}", tq_bench::figures::joins::print_explain(&fig));
        println!("{}", tq_statsdb::export::to_operator_csv(fig.stats.all()));
    }
}
