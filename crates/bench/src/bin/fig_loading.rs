//! Regenerates the section 3.2 loading experiment (12 hours -> 1).

fn main() {
    let (scale, _jobs) = tq_bench::env_config_or_exit();
    let scale = scale.max(10);
    let fig = tq_bench::figures::loading::run(scale);
    println!("{}", tq_bench::figures::loading::print(&fig));
}
