//! Regenerates the section 3.2 loading experiment (12 hours -> 1).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's §3.2 loading experiment (the 12-hours-to-1 \
         story). Runs at 1/10 scale or smaller.",
        "fig_loading",
        &[env::ENV_SCALE, env::ENV_BATCH, env::ENV_PARALLEL],
    );
    let (scale, _jobs) = tq_bench::env_config_or_exit();
    let scale = scale.max(10);
    let fig = tq_bench::figures::loading::run(scale);
    println!("{}", tq_bench::figures::loading::print(&fig));
}
