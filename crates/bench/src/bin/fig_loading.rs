//! Regenerates the section 3.2 loading experiment (12 hours -> 1).

fn main() {
    let scale = tq_bench::scale_from_env().max(10);
    let fig = tq_bench::figures::loading::run(scale);
    println!("{}", tq_bench::figures::loading::print(&fig));
}
