//! Extension experiment: cold vs warm executions (the paper ran only
//! cold ones).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Extension experiment: cold vs warm executions (the paper ran only \
         cold ones). Runs at 1/10 scale or smaller.",
        "fig_warm",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::warm::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::warm::print(&fig));
}
