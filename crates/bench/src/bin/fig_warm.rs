//! Extension experiment: cold vs warm executions (the paper ran only
//! cold ones).

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::warm::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::warm::print(&fig));
}
