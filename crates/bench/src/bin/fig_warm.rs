//! Extension experiment: cold vs warm executions (the paper ran only
//! cold ones).

fn main() {
    let scale = tq_bench::scale_from_env().max(10);
    let fig = tq_bench::figures::warm::run(scale);
    println!("{}", tq_bench::figures::warm::print(&fig));
}
