//! Regenerates the section 4.1 experiment: hash tables keyed on Rids
//! vs Handles.

fn main() {
    let scale = tq_bench::scale_from_env();
    let r = tq_bench::figures::handles::run_rid_vs_handle(scale);
    println!("{}", tq_bench::figures::handles::print_rid_vs_handle(&r));
}
