//! Regenerates the section 4.1 experiment: hash tables keyed on Rids
//! vs Handles.

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's §4.1 experiment: hash tables keyed on Rids \
         vs Handles.",
        "fig_rid_vs_handle",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let r = tq_bench::figures::handles::run_rid_vs_handle(scale, jobs);
    println!("{}", tq_bench::figures::handles::print_rid_vs_handle(&r));
}
