//! Closed-loop load generator for the tq-server query service.
//!
//! Starts the service over a freshly built database, drives it with
//! `TQ_CONCURRENCY` client threads for `TQ_DURATION` seconds, and
//! reports throughput, latency percentiles (p50/p95/p99 from a
//! log-scaled histogram), and the admission-control shed rate —
//! machine-readably as the latency CSV, and optionally as a JSON
//! record for `BENCH_serve.json` (`--json`).

use std::time::Duration;

use tq_bench::env;
use tq_bench::serve::{run_serve, ServeConfig};
use tq_query::JoinAlgo;
use tq_server::CacheMode;
use tq_statsdb::to_latency_csv;
use tq_workload::{DbShape, Organization};

fn main() {
    env::maybe_print_help(
        "Closed-loop load generator for the tq-server query service: drives \
         N client sessions against the simulated database and reports \
         throughput, latency percentiles, and shed rate.",
        "loadgen [--db db1|db2] [--org class|random|comp|assoc] \
         [--algo nl|nojoin|phj|chj] [--pat PCT] [--prov PCT] [--warm] \
         [--deadline-ms N] [--json PATH]",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_CONCURRENCY,
            env::ENV_DURATION,
            env::ENV_QUEUE_DEPTH,
            env::ENV_WRITE_MIX,
            env::ENV_WARMUP_MS,
            env::ENV_BATCH,
            env::ENV_SHARDS,
            env::ENV_PARALLEL,
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let flag = |name: &str| args.iter().any(|a| a == name);
    let shape = match arg("--db", "db2").as_str() {
        "db1" => DbShape::Db1,
        "db2" => DbShape::Db2,
        other => exit_usage(&format!("unknown --db {other:?} (use db1|db2)")),
    };
    let org = match arg("--org", "class").as_str() {
        "class" => Organization::ClassClustered,
        "random" => Organization::Randomized,
        "comp" | "composition" => Organization::Composition,
        "assoc" | "assoc-ordered" => Organization::AssociationOrdered,
        other => exit_usage(&format!(
            "unknown --org {other:?} (use class|random|comp|assoc)"
        )),
    };
    let algo = match arg("--algo", "chj").as_str() {
        "nl" => JoinAlgo::Nl,
        "nojoin" => JoinAlgo::Nojoin,
        "phj" => JoinAlgo::Phj,
        "chj" => JoinAlgo::Chj,
        other => exit_usage(&format!("unknown --algo {other:?} (use nl|nojoin|phj|chj)")),
    };
    let pct = |name: &str, default: &str| -> u32 {
        match arg(name, default).parse::<u32>() {
            Ok(n) if (1..=100).contains(&n) => n,
            _ => exit_usage(&format!("{name} must be a percentage in 1..=100")),
        }
    };
    let pat_pct = pct("--pat", "10");
    let prov_pct = pct("--prov", "90");
    let deadline_nanos = match arg("--deadline-ms", "0").parse::<u64>() {
        Ok(ms) => ms * 1_000_000,
        Err(_) => exit_usage("--deadline-ms must be an integer (simulated milliseconds)"),
    };
    let mode = if flag("--warm") {
        CacheMode::Warm
    } else {
        CacheMode::Cold
    };
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let or_exit = |r: Result<u32, String>| -> u32 {
        r.unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let concurrency = or_exit(env::concurrency_from_env());
    let duration_secs = or_exit(env::duration_secs_from_env());
    let queue_depth = or_exit(env::queue_depth_from_env());
    let write_mix = or_exit(env::write_mix_from_env());
    let shards = or_exit(env::shards_from_env());
    let parallel = env::parallel_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let duration = Duration::from_secs(duration_secs as u64);
    let warmup = match env::warmup_ms_from_env() {
        Ok(Some(ms)) => Duration::from_millis(ms),
        Ok(None) => duration / 5,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let db = tq_bench::build_db(shape, org, scale);
    let cfg = ServeConfig {
        concurrency,
        workers: jobs,
        queue_depth: queue_depth as usize,
        shards,
        duration,
        warmup,
        mode,
        algo,
        pat_pct,
        prov_pct,
        deadline_nanos,
        write_mix,
        parallel,
    };
    let shard_note = if shards > 1 {
        format!(" across {shards} shards")
    } else {
        String::new()
    };
    eprintln!(
        "serving: {} clients -> {} workers{} (queue depth {}), {}s ({}ms warmup, {}% writes)...",
        cfg.concurrency,
        cfg.workers,
        shard_note,
        cfg.queue_depth,
        duration_secs,
        warmup.as_millis(),
        write_mix
    );
    let cpu_ms_before = tq_bench::process_cpu_ms();
    let outcome = run_serve(db, &cfg);
    let cpu_ms = match (cpu_ms_before, tq_bench::process_cpu_ms()) {
        (Some(before), Some(after)) => Some(after - before),
        _ => None,
    };
    let s = &outcome.stat;
    println!(
        "ran {} ({} x{}, scale 1/{})",
        s.label,
        org.label(),
        concurrency,
        scale
    );
    println!(
        "throughput {:.1} q/s | p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms | \
         shed {} ({:.1}%)  deadline-exceeded {}  errors {}  leaked-handles {}",
        s.throughput_qps(),
        s.p50_nanos as f64 / 1e6,
        s.p95_nanos as f64 / 1e6,
        s.p99_nanos as f64 / 1e6,
        s.queries_shed,
        s.shed_rate() * 100.0,
        s.deadline_exceeded,
        s.errors,
        outcome.leaked_handles,
    );
    if shards > 1 {
        println!(
            "sharding: {} shards | shed at router edge {}  shed at shard queues {}",
            shards,
            s.shed_router,
            s.queries_shed - s.shed_router,
        );
    }
    if s.commits + s.aborts > 0 {
        println!(
            "writes: {} committed  {} aborted ({:.1}% abort rate)",
            s.commits,
            s.aborts,
            s.abort_rate() * 100.0
        );
    }
    println!("{}", to_latency_csv([s]));
    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(
            path,
            json_record(&outcome, scale, org, shards, parallel, cpu_ms),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    if s.errors > 0 || outcome.leaked_handles > 0 {
        std::process::exit(1);
    }
}

fn exit_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// One flat JSON record for `BENCH_serve.json` (hand-rolled: the only
/// string field is a label we format ourselves, so no escaping is
/// needed).
fn json_record(
    outcome: &tq_bench::ServeOutcome,
    scale: u32,
    org: Organization,
    shards: u32,
    parallel: usize,
    cpu_ms: Option<u64>,
) -> String {
    let s = &outcome.stat;
    format!(
        "{{\n  \"label\": \"{}\",\n  \"organization\": \"{}\",\n  \"scale\": {},\n  \
         \"concurrency\": {},\n  \"workers\": {},\n  \"queue_depth\": {},\n  \
         \"shards\": {},\n  \"parallel\": {},\n  \"cpu_ms\": {},\n  \
         \"duration_ns\": {},\n  \"queries_ok\": {},\n  \"queries_shed\": {},\n  \
         \"queries_shed_router\": {},\n  \
         \"deadline_exceeded\": {},\n  \"errors\": {},\n  \"commits\": {},\n  \
         \"aborts\": {},\n  \"abort_rate\": {:.3},\n  \"leaked_handles\": {},\n  \
         \"throughput_qps\": {:.3},\n  \"p50_ns\": {},\n  \"p95_ns\": {},\n  \
         \"p99_ns\": {},\n  \"max_ns\": {}\n}}\n",
        s.label,
        org.label(),
        scale,
        s.concurrency,
        s.workers,
        s.queue_depth,
        shards,
        parallel,
        cpu_ms.map_or("null".to_string(), |ms| ms.to_string()),
        s.duration_nanos,
        s.queries_ok,
        s.queries_shed,
        s.shed_router,
        s.deadline_exceeded,
        s.errors,
        s.commits,
        s.aborts,
        s.abort_rate(),
        outcome.leaked_handles,
        s.throughput_qps(),
        s.p50_nanos,
        s.p95_nanos,
        s.p99_nanos,
        s.max_nanos,
    )
}
