//! Intra-query scaling: one join, morsel-parallel at degrees 1/2/4.
//!
//! Runs every §5.1 join algorithm cold at each degree and reports, per
//! cell, the *host* cost (CPU milliseconds — user+system across all
//! threads — and wall milliseconds) next to the *simulated* cost
//! (total simulated seconds, which sums worker clocks and therefore
//! measures simulated work, not critical path). Each (algo, degree)
//! cell is measured `ROUNDS` times with the rounds interleaved —
//! degree 4 never runs back-to-back with itself, so ambient host noise
//! lands evenly — and the minimum is kept, the classic
//! noise-suppressing protocol for shared CI hosts.
//!
//! Result counts are printed per cell and must agree across degrees
//! (the differential oracle in `parallel_equivalence.rs` pins the full
//! invariant set); simulated seconds grow slightly with degree on the
//! hash joins (duplicated table-page touches), which is honest — the
//! win parallelism buys is wall-clock via more cores, and on a
//! single-core host (`host_cores: 1`) there is none to buy: expect
//! degree 4 to cost *more* CPU than degree 1 (thread setup, store
//! clones) with flat wall clock. The JSON records `host_cores` so a
//! reader can tell a physics-limited run from a regression.

use std::time::Instant;

use tq_bench::env;
use tq_bench::harness::run_join_cell_parallel;
use tq_query::join::JoinOptions;
use tq_query::JoinAlgo;
use tq_workload::{DbShape, Organization};

const DEGREES: [usize; 3] = [1, 2, 4];
const ALGOS: [JoinAlgo; 4] = [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj];
const ROUNDS: usize = 3;
const PAT_PCT: u32 = 10;
const PROV_PCT: u32 = 90;

#[derive(Clone, Copy, Default)]
struct Cell {
    cpu_ms: u64,
    wall_ms: u64,
    sim_secs: f64,
    results: u64,
}

fn main() {
    env::maybe_print_help(
        "Intra-query scaling: every join algorithm, morsel-parallel at \
         degrees 1/2/4, reporting host CPU + wall time (min of 3 \
         interleaved rounds) against simulated cost.",
        "fig_parallel [--json PATH]",
        &[env::ENV_SCALE, env::ENV_BATCH, env::ENV_PARALLEL],
    );
    let (scale, _jobs) = tq_bench::env_config_or_exit();
    let mut db = tq_bench::build_db(DbShape::Db2, Organization::ClassClustered, scale);
    let opts = JoinOptions::default();

    let mut cells: Vec<Vec<Cell>> = vec![vec![Cell::default(); DEGREES.len()]; ALGOS.len()];
    for round in 0..ROUNDS {
        for (ai, &algo) in ALGOS.iter().enumerate() {
            for (di, &degree) in DEGREES.iter().enumerate() {
                let cpu0 = tq_bench::process_cpu_ms().unwrap_or(0);
                let wall0 = Instant::now();
                let cell =
                    run_join_cell_parallel(&mut db, algo, PAT_PCT, PROV_PCT, &opts, None, degree)
                        .expect("no injected panics in a measurement run");
                let wall_ms = wall0.elapsed().as_millis() as u64;
                let cpu_ms = tq_bench::process_cpu_ms().unwrap_or(0) - cpu0;
                let slot = &mut cells[ai][di];
                if round == 0 || cpu_ms < slot.cpu_ms {
                    slot.cpu_ms = cpu_ms;
                }
                if round == 0 || wall_ms < slot.wall_ms {
                    slot.wall_ms = wall_ms;
                }
                slot.sim_secs = cell.secs;
                slot.results = cell.results;
            }
        }
    }

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "intra-query scaling (db2/class, {PAT_PCT}/{PROV_PCT}, scale 1/{scale}, \
         host cores {host_cores}, min of {ROUNDS} interleaved rounds)"
    );
    println!("algo    degree  cpu_ms  wall_ms  sim_secs  results");
    for (ai, &algo) in ALGOS.iter().enumerate() {
        for (di, &degree) in DEGREES.iter().enumerate() {
            let c = &cells[ai][di];
            println!(
                "{:<7} {:>6}  {:>6}  {:>7}  {:>8.3}  {:>7}",
                algo.label(),
                degree,
                c.cpu_ms,
                c.wall_ms,
                c.sim_secs,
                c.results
            );
        }
        let base = &cells[ai][0];
        for (di, &degree) in DEGREES.iter().enumerate().skip(1) {
            let c = &cells[ai][di];
            if c.cpu_ms > 0 {
                println!(
                    "  {} cpu speedup at degree {}: {:.2}x",
                    algo.label(),
                    degree,
                    base.cpu_ms as f64 / c.cpu_ms as f64
                );
            }
        }
    }

    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let mut rows = String::new();
        for (ai, &algo) in ALGOS.iter().enumerate() {
            for (di, &degree) in DEGREES.iter().enumerate() {
                let c = &cells[ai][di];
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{ \"algo\": \"{}\", \"degree\": {}, \"cpu_ms\": {}, \
                     \"wall_ms\": {}, \"sim_secs\": {:.6}, \"results\": {} }}",
                    algo.label(),
                    degree,
                    c.cpu_ms,
                    c.wall_ms,
                    c.sim_secs,
                    c.results
                ));
            }
        }
        let json = format!(
            "{{\n  \"host_cores\": {host_cores},\n  \"scale\": {scale},\n  \
             \"rounds\": {ROUNDS},\n  \"pat_pct\": {PAT_PCT},\n  \
             \"prov_pct\": {PROV_PCT},\n  \"cells\": [\n{rows}\n  ]\n}}\n"
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}
