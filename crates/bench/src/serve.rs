//! The closed-loop serving experiment: N client threads drive the
//! query service at a fixed concurrency for a fixed duration, each
//! running open-session → query → … → close-session over the wire
//! protocol, recording per-query wall-clock latency into a
//! log-scaled histogram.
//!
//! "Closed loop" means each client issues its next query only when the
//! previous one answers — offered load adapts to service capacity, so
//! the interesting outputs are throughput, the latency percentiles,
//! and (once concurrency outruns `workers + queue_depth`) the shed
//! rate. The `loadgen` binary is a thin CLI over [`run_serve`]; the
//! serving smoke test calls it directly.
//!
//! Two refinements over the naive loop:
//!
//! * **Warmup exclusion.** Samples taken inside the warmup window
//!   measure thread spin-up and cold caches, not steady state; they are
//!   discarded entirely, and the exported duration (the throughput
//!   denominator) is the *measured* window only.
//! * **Write mix.** With `write_mix > 0`, each client flips a seeded
//!   coin per iteration: heads runs a write transaction (one update
//!   statement + commit) instead of a query. A commit losing
//!   first-committer-wins validation counts as an *abort* — a distinct
//!   outcome column, never folded into ok or errors, so the abort rate
//!   under contention is a first-class result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tq_query::JoinAlgo;
use tq_router::{Router, RouterConfig, RouterStatsSnapshot};
use tq_server::{
    CacheMode, Client, QuerySpec, Response, Server, ServerConfig, ServerStatsSnapshot,
    UpdateTarget, SHARD_SELF,
};
use tq_simrng::SimRng;
use tq_statsdb::{LatencyStat, LogHistogram};
use tq_workload::Database;

/// One serving run's shape.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Closed-loop client threads.
    pub concurrency: u32,
    /// Server worker threads (split across shards when `shards > 1`).
    pub workers: usize,
    /// Admission-queue depth (0 = shed unless a worker is idle).
    pub queue_depth: usize,
    /// Engine shards. 1 serves the single-server path unchanged;
    /// `n > 1` partitions the database by Rid hash and serves through
    /// the scatter-gather router, giving each shard
    /// `max(1, workers / n)` workers so shard counts compete for the
    /// same core budget.
    pub shards: u32,
    /// Wall-clock duration to drive load for (warmup included).
    pub duration: Duration,
    /// Leading window whose samples are discarded (spin-up, cold
    /// caches). Clamped to `duration`.
    pub warmup: Duration,
    /// Cache discipline of every session.
    pub mode: CacheMode,
    /// The join every client runs.
    pub algo: JoinAlgo,
    /// Patient-side selectivity (percent).
    pub pat_pct: u32,
    /// Provider-side selectivity (percent).
    pub prov_pct: u32,
    /// Per-query simulated-time deadline in nanoseconds (0 = none).
    pub deadline_nanos: u64,
    /// Percent of iterations that run a write transaction
    /// (update + commit) instead of a query; 0 = read-only.
    pub write_mix: u32,
    /// Morsel-parallel degree for every served join query
    /// (`TQ_PARALLEL`); forwarded to the server (or to every shard),
    /// whose worker pool is budgeted so `workers × parallel` stays
    /// within the host's cores.
    pub parallel: usize,
}

/// What a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The exportable latency summary (measured window only).
    pub stat: LatencyStat,
    /// The engine's own counters for the run (warmup included — the
    /// server doesn't know about the client-side window). Summed
    /// across shards in a sharded run.
    pub server: ServerStatsSnapshot,
    /// The router's counters (sharded runs only).
    pub router: Option<RouterStatsSnapshot>,
    /// Handles still pinned at any session close (0 in a correct run).
    pub leaked_handles: u64,
}

/// Per-client tally, merged into the run totals at join time.
struct ClientTally {
    hist: LogHistogram,
    shed: u64,
    shed_router: u64,
    deadline_exceeded: u64,
    errors: u64,
    commits: u64,
    aborts: u64,
    leaked: u64,
}

/// What the clients connect to: one server, or a router over shards.
/// Either way the conversation is the same wire protocol over the
/// same in-process duplex streams.
enum Front {
    Single(Server),
    Sharded(Router),
}

impl Front {
    fn connect(&self) -> tq_server::DuplexStream {
        match self {
            Front::Single(server) => server.connect_in_proc(),
            Front::Sharded(router) => router.connect_in_proc(),
        }
    }

    fn server_stats(&self) -> ServerStatsSnapshot {
        match self {
            Front::Single(server) => server.stats(),
            Front::Sharded(router) => {
                let mut sum = ServerStatsSnapshot::default();
                for shard in router.shards() {
                    let s = shard.stats();
                    sum.sessions_opened += s.sessions_opened;
                    sum.sessions_closed += s.sessions_closed;
                    sum.queries_ok += s.queries_ok;
                    sum.queries_shed += s.queries_shed;
                    sum.queries_deadline_exceeded += s.queries_deadline_exceeded;
                    sum.queries_failed += s.queries_failed;
                    sum.updates_ok += s.updates_ok;
                    sum.commits += s.commits;
                    sum.commit_aborts += s.commit_aborts;
                    sum.rollbacks += s.rollbacks;
                }
                sum
            }
        }
    }

    fn router_stats(&self) -> Option<RouterStatsSnapshot> {
        match self {
            Front::Single(_) => None,
            Front::Sharded(router) => Some(router.stats()),
        }
    }

    fn shutdown(self) {
        match self {
            Front::Single(server) => server.shutdown(),
            Front::Sharded(router) => router.shutdown(),
        }
    }
}

/// Runs one closed-loop serving experiment over a base snapshot.
pub fn run_serve(base: Database, cfg: &ServeConfig) -> ServeOutcome {
    let front = if cfg.shards > 1 {
        let router = Router::start_partitioned(
            &base,
            cfg.shards,
            RouterConfig {
                workers_per_shard: (cfg.workers / cfg.shards as usize).max(1),
                queue_depth: cfg.queue_depth,
                // The router's edge admits what a single server of the
                // same sizing would have in flight: workers running
                // plus a queue's worth waiting.
                max_inflight: cfg.workers + cfg.queue_depth,
                parallel: cfg.parallel,
            },
        );
        drop(base);
        Front::Sharded(router)
    } else {
        Front::Single(Server::start(
            base,
            ServerConfig {
                workers: cfg.workers,
                queue_depth: cfg.queue_depth,
                parallel: cfg.parallel,
            },
        ))
    };
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let warmup = cfg.warmup.min(cfg.duration);
    let measure_from = started + warmup;
    let clients: Vec<_> = (0..cfg.concurrency)
        .map(|i| {
            let conn = front.connect();
            let stop = Arc::clone(&stop);
            let cfg = *cfg;
            std::thread::Builder::new()
                .name(format!("tq-client-{i}"))
                .spawn(move || client_loop(conn, &stop, &cfg, measure_from, i))
                .expect("spawn client")
        })
        .collect();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut hist = LogHistogram::new();
    let (mut shed, mut shed_router, mut deadline_exceeded, mut errors) = (0, 0, 0, 0);
    let (mut commits, mut aborts, mut leaked) = (0, 0, 0);
    for client in clients {
        let tally = client.join().expect("client thread");
        hist.merge(&tally.hist);
        shed += tally.shed;
        shed_router += tally.shed_router;
        deadline_exceeded += tally.deadline_exceeded;
        errors += tally.errors;
        commits += tally.commits;
        aborts += tally.aborts;
        leaked += tally.leaked;
    }
    // Clients have hung up; export the *measured* window (warmup
    // excluded) — it is the throughput denominator, and counting the
    // discarded spin-up span would overstate capacity.
    let duration_nanos = started.elapsed().saturating_sub(warmup).as_nanos() as u64;
    let mode_label = match cfg.mode {
        CacheMode::Cold => "cold",
        CacheMode::Warm => "warm",
    };
    let write_label = if cfg.write_mix > 0 {
        format!(" write={}%", cfg.write_mix)
    } else {
        String::new()
    };
    let shard_label = if cfg.shards > 1 {
        format!(" shards={}", cfg.shards)
    } else {
        String::new()
    };
    let stat = LatencyStat::from_histogram(
        format!(
            "{} pat={} prov={} {}{}{}",
            cfg.algo.label(),
            cfg.pat_pct,
            cfg.prov_pct,
            mode_label,
            write_label,
            shard_label
        ),
        cfg.concurrency,
        cfg.workers as u32,
        cfg.queue_depth as u32,
        duration_nanos,
        &hist,
        shed,
        shed_router,
        deadline_exceeded,
        errors,
        commits,
        aborts,
    );
    let server_stats = front.server_stats();
    let router_stats = front.router_stats();
    front.shutdown();
    ServeOutcome {
        stat,
        server: server_stats,
        router: router_stats,
        leaked_handles: leaked,
    }
}

fn client_loop(
    conn: tq_server::DuplexStream,
    stop: &AtomicBool,
    cfg: &ServeConfig,
    measure_from: Instant,
    client_index: u32,
) -> ClientTally {
    let mut tally = ClientTally {
        hist: LogHistogram::new(),
        shed: 0,
        shed_router: 0,
        deadline_exceeded: 0,
        errors: 0,
        commits: 0,
        aborts: 0,
        leaked: 0,
    };
    // Behind a router, `Overloaded { shard: SHARD_SELF }` is the
    // router's own edge shedding; any concrete index is a shard queue.
    // Talking to a single server directly, SHARD_SELF *is* the shard.
    let routed = cfg.shards > 1;
    // Seeded per client: the read/write coin sequence is reproducible
    // for a given concurrency, independent of scheduling.
    let mut rng = SimRng::seed_from_u64(0xC11E47 ^ u64::from(client_index));
    let mut client = Client::new(conn);
    let session = match client.open_session(cfg.mode) {
        Ok(s) => s,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    while !stop.load(Ordering::Relaxed) {
        let write = (rng.index(100) as u32) < cfg.write_mix;
        let t0 = Instant::now();
        // Warmup samples are discarded entirely: neither the histogram
        // nor the outcome counters see them (errors excepted — an
        // error is a correctness failure whenever it happens).
        let measured = t0 >= measure_from;
        if write {
            write_transaction(&mut client, session, cfg, measured, t0, routed, &mut tally);
        } else {
            match client.query(QuerySpec {
                session,
                algo: cfg.algo,
                pat_pct: cfg.pat_pct,
                prov_pct: cfg.prov_pct,
                deadline_nanos: cfg.deadline_nanos,
            }) {
                Ok(Response::QueryOk { .. }) => {
                    if measured {
                        tally.hist.record(t0.elapsed().as_nanos() as u64);
                    }
                }
                Ok(Response::Overloaded { shard, .. }) => {
                    if measured {
                        tally.shed += 1;
                        if routed && shard == SHARD_SELF {
                            tally.shed_router += 1;
                        }
                    }
                    // Closed-loop retry: yield so shed arrivals don't
                    // spin the dispatcher while the queue stays full.
                    std::thread::yield_now();
                }
                Ok(Response::DeadlineExceeded { .. }) => {
                    if measured {
                        tally.deadline_exceeded += 1;
                    }
                }
                Ok(_) | Err(_) => {
                    tally.errors += 1;
                    return tally;
                }
            }
        }
    }
    match client.close_session(session) {
        Ok((_drained, leaked, _uncommitted)) => tally.leaked += leaked,
        Err(_) => tally.errors += 1,
    }
    tally
}

/// One write transaction: a Patients num-update plus a commit, measured
/// as a single latency sample. The num attribute is not a join key, so
/// committed writes never perturb the read queries' result sets —
/// contention is real (overlapping page sets) but reads stay stable.
fn write_transaction<S: std::io::Read + std::io::Write>(
    client: &mut Client<S>,
    session: u64,
    cfg: &ServeConfig,
    measured: bool,
    t0: Instant,
    routed: bool,
    tally: &mut ClientTally,
) {
    match client.update(
        session,
        UpdateTarget::Patients,
        cfg.pat_pct,
        1,
        cfg.deadline_nanos,
    ) {
        Ok(Response::UpdateOk { .. }) => {}
        Ok(Response::Overloaded { shard, .. }) => {
            if measured {
                tally.shed += 1;
                if routed && shard == SHARD_SELF {
                    tally.shed_router += 1;
                }
            }
            std::thread::yield_now();
            return;
        }
        Ok(Response::DeadlineExceeded { .. }) => {
            // The session was refilled from its base: nothing to
            // commit or roll back.
            if measured {
                tally.deadline_exceeded += 1;
            }
            return;
        }
        Ok(_) | Err(_) => {
            tally.errors += 1;
            return;
        }
    }
    match client.commit(session) {
        Ok(Response::Committed { .. }) => {
            if measured {
                tally.commits += 1;
                tally.hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
        Ok(Response::Aborted { .. }) | Ok(Response::ShardsAborted { .. }) => {
            // Validation working as designed, not an error; the engine
            // already rolled the session back and re-pinned it. Behind
            // a router the abort arrives typed per shard.
            if measured {
                tally.aborts += 1;
            }
        }
        Ok(_) | Err(_) => tally.errors += 1,
    }
}
