//! The closed-loop serving experiment: N client threads drive the
//! query service at a fixed concurrency for a fixed duration, each
//! running open-session → query → … → close-session over the wire
//! protocol, recording per-query wall-clock latency into a
//! log-scaled histogram.
//!
//! "Closed loop" means each client issues its next query only when the
//! previous one answers — offered load adapts to service capacity, so
//! the interesting outputs are throughput, the latency percentiles,
//! and (once concurrency outruns `workers + queue_depth`) the shed
//! rate. The `loadgen` binary is a thin CLI over [`run_serve`]; the
//! serving smoke test calls it directly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tq_query::JoinAlgo;
use tq_server::{
    CacheMode, Client, QuerySpec, Response, Server, ServerConfig, ServerStatsSnapshot,
};
use tq_statsdb::{LatencyStat, LogHistogram};
use tq_workload::Database;

/// One serving run's shape.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Closed-loop client threads.
    pub concurrency: u32,
    /// Server worker threads.
    pub workers: usize,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Wall-clock duration to drive load for.
    pub duration: Duration,
    /// Cache discipline of every session.
    pub mode: CacheMode,
    /// The join every client runs.
    pub algo: JoinAlgo,
    /// Patient-side selectivity (percent).
    pub pat_pct: u32,
    /// Provider-side selectivity (percent).
    pub prov_pct: u32,
    /// Per-query simulated-time deadline in nanoseconds (0 = none).
    pub deadline_nanos: u64,
}

/// What a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The exportable latency summary.
    pub stat: LatencyStat,
    /// The server's own counters for the run.
    pub server: ServerStatsSnapshot,
    /// Handles still pinned at any session close (0 in a correct run).
    pub leaked_handles: u64,
}

/// Per-client tally, merged into the run totals at join time.
struct ClientTally {
    hist: LogHistogram,
    shed: u64,
    deadline_exceeded: u64,
    errors: u64,
    leaked: u64,
}

/// Runs one closed-loop serving experiment over a base snapshot.
pub fn run_serve(base: Database, cfg: &ServeConfig) -> ServeOutcome {
    let server = Server::start(
        base,
        ServerConfig {
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
        },
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let clients: Vec<_> = (0..cfg.concurrency)
        .map(|i| {
            let conn = server.connect_in_proc();
            let stop = Arc::clone(&stop);
            let cfg = *cfg;
            std::thread::Builder::new()
                .name(format!("tq-client-{i}"))
                .spawn(move || client_loop(conn, &stop, &cfg))
                .expect("spawn client")
        })
        .collect();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut hist = LogHistogram::new();
    let (mut shed, mut deadline_exceeded, mut errors, mut leaked) = (0, 0, 0, 0);
    for client in clients {
        let tally = client.join().expect("client thread");
        hist.merge(&tally.hist);
        shed += tally.shed;
        deadline_exceeded += tally.deadline_exceeded;
        errors += tally.errors;
        leaked += tally.leaked;
    }
    // Clients have hung up; measure the actual driven window and fold
    // the per-thread tallies into the exportable record.
    let duration_nanos = started.elapsed().as_nanos() as u64;
    let mode_label = match cfg.mode {
        CacheMode::Cold => "cold",
        CacheMode::Warm => "warm",
    };
    let stat = LatencyStat::from_histogram(
        format!(
            "{} pat={} prov={} {}",
            cfg.algo.label(),
            cfg.pat_pct,
            cfg.prov_pct,
            mode_label
        ),
        cfg.concurrency,
        cfg.workers as u32,
        cfg.queue_depth as u32,
        duration_nanos,
        &hist,
        shed,
        deadline_exceeded,
        errors,
    );
    let server_stats = server.stats();
    server.shutdown();
    ServeOutcome {
        stat,
        server: server_stats,
        leaked_handles: leaked,
    }
}

fn client_loop(conn: tq_server::DuplexStream, stop: &AtomicBool, cfg: &ServeConfig) -> ClientTally {
    let mut tally = ClientTally {
        hist: LogHistogram::new(),
        shed: 0,
        deadline_exceeded: 0,
        errors: 0,
        leaked: 0,
    };
    let mut client = Client::new(conn);
    let session = match client.open_session(cfg.mode) {
        Ok(s) => s,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        match client.query(QuerySpec {
            session,
            algo: cfg.algo,
            pat_pct: cfg.pat_pct,
            prov_pct: cfg.prov_pct,
            deadline_nanos: cfg.deadline_nanos,
        }) {
            Ok(Response::QueryOk { .. }) => tally.hist.record(t0.elapsed().as_nanos() as u64),
            Ok(Response::Overloaded { .. }) => {
                tally.shed += 1;
                // Closed-loop retry: yield so shed arrivals don't spin
                // the dispatcher while the queue stays full.
                std::thread::yield_now();
            }
            Ok(Response::DeadlineExceeded { .. }) => tally.deadline_exceeded += 1,
            Ok(_) | Err(_) => {
                tally.errors += 1;
                return tally;
            }
        }
    }
    match client.close_session(session) {
        Ok((_drained, leaked)) => tally.leaked += leaked,
        Err(_) => tally.errors += 1,
    }
    tally
}
