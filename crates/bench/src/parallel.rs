//! A deterministic worker pool for figure cells.
//!
//! Every figure is a grid of independent cold-run measurements; each
//! cell simulates its own machine (a cloned [`Database`] with its own
//! disk, caches and clock), so cells can run on any thread in any
//! order without changing a single simulated number. [`run_cells`]
//! fans the cells across `worker_count` threads and re-collects the
//! results *in job order*, so the printed tables and the stored
//! [`Stat`](tq_statsdb::Stat) records are byte-identical to a serial
//! run at any `TQ_JOBS` value.
//!
//! [`Database`]: tq_workload::Database

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs every job and returns the results in job order.
///
/// With `worker_count <= 1` (or fewer than two jobs) the jobs run
/// inline on the calling thread — the exact serial behaviour, no
/// threads spawned. Otherwise `min(worker_count, jobs.len())` scoped
/// threads pull jobs from a shared counter and send `(index, result)`
/// pairs through a channel; the caller reorders them, so scheduling
/// can never leak into the output.
///
/// A panicking job panics the caller (propagated by
/// [`std::thread::scope`] when the worker is joined).
pub fn run_cells<J, T>(jobs: Vec<J>, worker_count: usize) -> Vec<T>
where
    J: FnOnce() -> T + Send,
    T: Send,
{
    if worker_count <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    // Cells behind Options so each worker can move its job out.
    let cells: Vec<std::sync::Mutex<Option<J>>> = jobs
        .into_iter()
        .map(|job| std::sync::Mutex::new(Some(job)))
        .collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..worker_count.min(n) {
            let tx = tx.clone();
            let next = &next;
            let cells = &cells;
            workers.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let job = cells[i].lock().unwrap().take().expect("job claimed once");
                // A send can only fail if the receiver is gone, which
                // means another worker panicked; stop quietly — the
                // join below re-raises that panic.
                if tx.send((i, job())).is_err() {
                    break;
                }
            }));
        }
        drop(tx);
        for (i, value) in rx {
            results[i] = Some(value);
        }
        // Join explicitly so a panicking cell re-raises with its own
        // message (the scope's automatic join would replace it with a
        // generic one).
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job reported"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_cells(Vec::<Box<dyn FnOnce() -> u32 + Send>>::new(), 4);
        assert!(out.is_empty());
        let out: Vec<u32> = run_cells(Vec::<Box<dyn FnOnce() -> u32 + Send>>::new(), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1usize, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0..17u64)
                .map(|i| {
                    move || {
                        // Stagger finish times so out-of-order arrival
                        // actually happens under multiple workers.
                        std::thread::sleep(std::time::Duration::from_millis((17 - i) % 5));
                        i * i
                    }
                })
                .collect();
            let out = run_cells(jobs, workers);
            assert_eq!(
                out,
                (0..17u64).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn more_workers_than_jobs() {
        let jobs: Vec<_> = (0..3u32).map(|i| move || i + 100).collect();
        assert_eq!(run_cells(jobs, 32), vec![100, 101, 102]);
    }

    #[test]
    #[should_panic(expected = "cell 2 exploded")]
    fn worker_panics_propagate() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..4u32)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("cell 2 exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let _ = run_cells(jobs, 2);
    }

    #[test]
    #[should_panic(expected = "inline panic")]
    fn inline_panics_propagate_too() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| panic!("inline panic"))];
        let _ = run_cells(jobs, 1);
    }
}
