//! Environment knobs shared by every binary, and the standard
//! `--help` prologue.
//!
//! Every `TQ_*` variable any binary honours is parsed here (and
//! documented in the README's environment table). A set-but-unparseable
//! value is a hard error: silently falling back to a default would
//! launch a run the user did not ask for. Errors are returned (not
//! exited on) so library callers and tests stay testable; the binaries
//! report them and exit 2.

/// Reads the scale divisor from `TQ_SCALE` (default 1 = paper scale).
pub fn scale_from_env() -> Result<u32, String> {
    positive_from_env("TQ_SCALE", 1, "the figure scale divisor")
}

/// Reads the worker count from `TQ_JOBS`.
///
/// Defaults to the machine's available parallelism; `1` runs every
/// cell inline on the main thread (the exact pre-parallel behaviour).
/// Cells are deterministic either way — any value produces
/// byte-identical figures. The load generator reuses it as the
/// server's worker-pool size (the same "how many cores" knob).
pub fn jobs_from_env() -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    positive_from_env("TQ_JOBS", default, "the worker count").map(|n| n as usize)
}

/// Reads the executor batch size from `TQ_BATCH` (default
/// [`tq_query::exec::DEFAULT_BATCH_SIZE`]).
///
/// `1` runs the legacy scalar path (one operator scope per tuple) —
/// kept for differential testing. Any value produces byte-identical
/// figures and `Stat`s; batching only amortizes the executor's own
/// bookkeeping (counter snapshots, cancellation checks, handle-table
/// round trips), never the simulated cost model.
pub fn batch_from_env() -> Result<usize, String> {
    positive_from_env(
        "TQ_BATCH",
        tq_query::exec::DEFAULT_BATCH_SIZE as u32,
        "the executor batch size",
    )
    .map(|n| n as usize)
}

/// Reads the morsel-parallel degree from `TQ_PARALLEL` (default 1 =
/// the exact serial execution path).
///
/// `n > 1` splits each query's driving access path into contiguous
/// batch-aligned morsels executed on `n` scoped worker threads, each
/// against a private store clone (the in-process analogue of the
/// router's per-shard caches). Result counts, descriptions, per-row
/// handle fetches, and Emit rows are byte-identical at any degree;
/// cache hit/miss splits and swap faults may differ (private caches
/// see different interleaves) — `1` is byte-identical, full stop.
/// The load generator forwards it to the server (or every shard),
/// which budgets `workers × parallel` against the host's cores.
pub fn parallel_from_env() -> Result<usize, String> {
    positive_from_env("TQ_PARALLEL", 1, "the morsel-parallel degree").map(|n| n as usize)
}

/// Reads the closed-loop client count from `TQ_CONCURRENCY`
/// (default 8) — loadgen only.
pub fn concurrency_from_env() -> Result<u32, String> {
    positive_from_env("TQ_CONCURRENCY", 8, "the closed-loop client count")
}

/// Reads the serving-run duration in wall-clock seconds from
/// `TQ_DURATION` (default 2) — loadgen only.
pub fn duration_secs_from_env() -> Result<u32, String> {
    positive_from_env("TQ_DURATION", 2, "the serving run duration in seconds")
}

/// Reads the admission-queue depth from `TQ_QUEUE_DEPTH` (default 16)
/// — loadgen only. `0` is a *meaningful* depth, not an error: it is
/// the strictest admission policy (shed unless a worker is idle — see
/// `tq_server::sched`), so this knob parses non-negative.
pub fn queue_depth_from_env() -> Result<u32, String> {
    non_negative_from_env("TQ_QUEUE_DEPTH", 16, "the admission queue depth")
}

/// Reads the engine-shard count from `TQ_SHARDS` (default 1 =
/// unsharded, the exact single-server path) — loadgen only. `n > 1`
/// partitions the database by Rid hash across `n` engine shards and
/// serves through the scatter-gather router; workers are split across
/// shards (`max(1, TQ_JOBS / n)` each) so shard counts compete for
/// the same core budget.
pub fn shards_from_env() -> Result<u32, String> {
    positive_from_env("TQ_SHARDS", 1, "the engine shard count")
}

/// Reads the write percentage for mixed workloads from `TQ_WRITE_MIX`
/// (default 0 = read-only) — loadgen only. Each closed-loop client
/// flips a seeded coin per iteration: with probability `n`% it runs a
/// write transaction (update + commit) instead of a query.
pub fn write_mix_from_env() -> Result<u32, String> {
    let n = non_negative_from_env("TQ_WRITE_MIX", 0, "the write percentage")?;
    if n > 100 {
        return Err(format!(
            "TQ_WRITE_MIX (the write percentage) must be in 0..=100, got {n}"
        ));
    }
    Ok(n)
}

/// Reads the warmup window in wall-clock milliseconds from
/// `TQ_WARMUP_MS` — loadgen only. `None` when unset (the load
/// generator then defaults to a fifth of the run duration). Samples
/// inside the warmup window are discarded: they measure cold caches
/// and thread spin-up, not steady state, and counting them inflates
/// early-run throughput.
pub fn warmup_ms_from_env() -> Result<Option<u64>, String> {
    match std::env::var("TQ_WARMUP_MS") {
        Err(_) => Ok(None),
        Ok(raw) => match raw.parse::<u64>() {
            Ok(ms) => Ok(Some(ms)),
            Err(_) => Err(format!(
                "TQ_WARMUP_MS (the warmup window) must be a non-negative integer \
                 of milliseconds, got {raw:?}"
            )),
        },
    }
}

/// Reads the chain-ordering policy filter from `TQ_PLANNER` —
/// `fig_multiway` only. `None` when unset (the figure then runs all
/// three policies side by side); `estimate`, `simpli`, or `syntactic`
/// selects one. Anything else is a hard error, same as every knob.
pub fn planner_from_env() -> Result<Option<tq_query::PlannerPolicy>, String> {
    match std::env::var("TQ_PLANNER") {
        Err(_) => Ok(None),
        Ok(raw) => match tq_query::PlannerPolicy::parse(&raw) {
            Some(policy) => Ok(Some(policy)),
            None => Err(format!(
                "TQ_PLANNER (the chain-ordering policy) must be one of \
                 estimate, simpli, syntactic; got {raw:?}"
            )),
        },
    }
}

/// Shared parser: a positive integer from `var`, or `default` when
/// unset.
pub fn positive_from_env(var: &str, default: u32, what: &str) -> Result<u32, String> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => match raw.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "{var} ({what}) must be a positive integer, got {raw:?}"
            )),
        },
    }
}

/// Shared parser: a non-negative integer from `var`, or `default` when
/// unset (for knobs where 0 is a meaningful value, not a typo).
pub fn non_negative_from_env(var: &str, default: u32, what: &str) -> Result<u32, String> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => raw
            .parse::<u32>()
            .map_err(|_| format!("{var} ({what}) must be a non-negative integer, got {raw:?}")),
    }
}

/// `(variable, description)` rows for [`maybe_print_help`].
pub type EnvDoc = (&'static str, &'static str);

/// `TQ_SCALE` help row.
pub const ENV_SCALE: EnvDoc = (
    "TQ_SCALE",
    "divide database sizes (and caches, keeping ratios) by n; default 1 = paper scale",
);
/// `TQ_JOBS` help row.
pub const ENV_JOBS: EnvDoc = (
    "TQ_JOBS",
    "worker threads (figure cells / server workers); default: available cores",
);
/// `TQ_EXPLAIN` help row.
pub const ENV_EXPLAIN: EnvDoc = (
    "TQ_EXPLAIN",
    "if set, also print per-operator counter tables and the operator CSV",
);
/// `TQ_BATCH` help row.
pub const ENV_BATCH: EnvDoc = (
    "TQ_BATCH",
    "executor batch size; 1 = scalar path; output is identical either way; default 1024",
);
/// `TQ_PARALLEL` help row.
pub const ENV_PARALLEL: EnvDoc = (
    "TQ_PARALLEL",
    "morsel-parallel degree per query; 1 = exact serial path (byte-identical output); default 1",
);
/// `TQ_CONCURRENCY` help row.
pub const ENV_CONCURRENCY: EnvDoc = (
    "TQ_CONCURRENCY",
    "closed-loop client threads driving the server; default 8",
);
/// `TQ_DURATION` help row.
pub const ENV_DURATION: EnvDoc = (
    "TQ_DURATION",
    "serving run duration in wall-clock seconds; default 2",
);
/// `TQ_QUEUE_DEPTH` help row.
pub const ENV_QUEUE_DEPTH: EnvDoc = (
    "TQ_QUEUE_DEPTH",
    "admission-queue depth; arrivals beyond it are shed; 0 = shed unless a worker is idle; default 16",
);
/// `TQ_SHARDS` help row.
pub const ENV_SHARDS: EnvDoc = (
    "TQ_SHARDS",
    "engine shards behind a scatter-gather router; 1 = unsharded single server; default 1",
);
/// `TQ_WRITE_MIX` help row.
pub const ENV_WRITE_MIX: EnvDoc = (
    "TQ_WRITE_MIX",
    "percent of client iterations that run a write transaction (update+commit); default 0",
);
/// `TQ_WARMUP_MS` help row.
pub const ENV_WARMUP_MS: EnvDoc = (
    "TQ_WARMUP_MS",
    "warmup window in ms, excluded from throughput/latency; default: duration/5",
);
/// `TQ_PLANNER` help row.
pub const ENV_PLANNER: EnvDoc = (
    "TQ_PLANNER",
    "chain-ordering policy: estimate | simpli | syntactic; default: run all three",
);

/// Standard `--help`/`-h` handling: when present in the arguments,
/// prints the about text, usage line, and environment table, then
/// exits 0. Binaries call this first.
pub fn maybe_print_help(about: &str, usage: &str, env_vars: &[EnvDoc]) {
    if !std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
        return;
    }
    println!("{about}\n\nUsage: {usage}");
    if !env_vars.is_empty() {
        println!("\nEnvironment:");
        for (var, what) in env_vars {
            println!("  {var:<16} {what}");
        }
    }
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global: one test covers all parsers
    // sequentially (the figure-env tests in parallel_matches_serial.rs
    // cover TQ_SCALE/TQ_JOBS the same way).
    #[test]
    fn serving_knobs_parse_and_reject() {
        for (var, parse, default) in [
            (
                "TQ_CONCURRENCY",
                concurrency_from_env as fn() -> Result<u32, String>,
                8,
            ),
            ("TQ_DURATION", duration_secs_from_env, 2),
            ("TQ_SHARDS", shards_from_env, 1),
        ] {
            std::env::remove_var(var);
            assert_eq!(parse(), Ok(default));
            std::env::set_var(var, "3");
            assert_eq!(parse(), Ok(3));
            std::env::set_var(var, "zero");
            let err = parse().unwrap_err();
            assert!(err.contains(var) && err.contains("positive integer"));
            std::env::set_var(var, "0");
            assert!(parse().is_err());
            std::env::remove_var(var);
        }

        // TQ_QUEUE_DEPTH: 0 is the shed-unless-idle policy, a *valid*
        // configuration — it must parse, not error or silently clamp.
        std::env::remove_var("TQ_QUEUE_DEPTH");
        assert_eq!(queue_depth_from_env(), Ok(16));
        std::env::set_var("TQ_QUEUE_DEPTH", "0");
        assert_eq!(queue_depth_from_env(), Ok(0), "depth 0 is shed-unless-idle");
        std::env::set_var("TQ_QUEUE_DEPTH", "7");
        assert_eq!(queue_depth_from_env(), Ok(7));
        std::env::set_var("TQ_QUEUE_DEPTH", "-1");
        assert!(queue_depth_from_env().is_err());
        std::env::set_var("TQ_QUEUE_DEPTH", "deep");
        let err = queue_depth_from_env().unwrap_err();
        assert!(err.contains("TQ_QUEUE_DEPTH") && err.contains("non-negative"));
        std::env::remove_var("TQ_QUEUE_DEPTH");

        // TQ_WRITE_MIX: a percentage, 0 included, 100 the ceiling.
        std::env::remove_var("TQ_WRITE_MIX");
        assert_eq!(write_mix_from_env(), Ok(0));
        std::env::set_var("TQ_WRITE_MIX", "0");
        assert_eq!(write_mix_from_env(), Ok(0));
        std::env::set_var("TQ_WRITE_MIX", "30");
        assert_eq!(write_mix_from_env(), Ok(30));
        std::env::set_var("TQ_WRITE_MIX", "100");
        assert_eq!(write_mix_from_env(), Ok(100));
        std::env::set_var("TQ_WRITE_MIX", "101");
        assert!(write_mix_from_env().unwrap_err().contains("0..=100"));
        std::env::set_var("TQ_WRITE_MIX", "many");
        assert!(write_mix_from_env().is_err());
        std::env::remove_var("TQ_WRITE_MIX");

        // TQ_BATCH: unset means the compiled default, 1 is the scalar
        // path (valid), 0 and garbage are rejected — a silently
        // clamped batch size would hide a typo'd perf experiment.
        std::env::remove_var("TQ_BATCH");
        assert_eq!(batch_from_env(), Ok(tq_query::exec::DEFAULT_BATCH_SIZE));
        std::env::set_var("TQ_BATCH", "1");
        assert_eq!(batch_from_env(), Ok(1), "1 selects the scalar path");
        std::env::set_var("TQ_BATCH", "7");
        assert_eq!(batch_from_env(), Ok(7));
        std::env::set_var("TQ_BATCH", "0");
        assert!(batch_from_env().is_err());
        std::env::set_var("TQ_BATCH", "huge");
        let err = batch_from_env().unwrap_err();
        assert!(err.contains("TQ_BATCH") && err.contains("positive integer"));
        std::env::remove_var("TQ_BATCH");

        // TQ_PARALLEL: unset means serial (degree 1), 1 is explicit
        // serial, 0 and garbage are rejected — the binaries exit 2 on
        // the error rather than silently running a serial experiment
        // labelled parallel.
        std::env::remove_var("TQ_PARALLEL");
        assert_eq!(parallel_from_env(), Ok(1));
        std::env::set_var("TQ_PARALLEL", "1");
        assert_eq!(parallel_from_env(), Ok(1), "1 is the exact serial path");
        std::env::set_var("TQ_PARALLEL", "4");
        assert_eq!(parallel_from_env(), Ok(4));
        std::env::set_var("TQ_PARALLEL", "0");
        assert!(parallel_from_env().is_err());
        std::env::set_var("TQ_PARALLEL", "banana");
        let err = parallel_from_env().unwrap_err();
        assert!(err.contains("TQ_PARALLEL") && err.contains("positive integer"));
        std::env::remove_var("TQ_PARALLEL");

        // TQ_WARMUP_MS: unset means "derive from duration", 0 means
        // "no warmup", any other integer is taken literally.
        std::env::remove_var("TQ_WARMUP_MS");
        assert_eq!(warmup_ms_from_env(), Ok(None));
        std::env::set_var("TQ_WARMUP_MS", "0");
        assert_eq!(warmup_ms_from_env(), Ok(Some(0)));
        std::env::set_var("TQ_WARMUP_MS", "250");
        assert_eq!(warmup_ms_from_env(), Ok(Some(250)));
        std::env::set_var("TQ_WARMUP_MS", "soon");
        assert!(warmup_ms_from_env().is_err());
        std::env::remove_var("TQ_WARMUP_MS");

        // TQ_PLANNER: unset means "all three policies", an exact label
        // selects one, anything else (including case variants) errors.
        std::env::remove_var("TQ_PLANNER");
        assert_eq!(planner_from_env(), Ok(None));
        for policy in tq_query::PlannerPolicy::all() {
            std::env::set_var("TQ_PLANNER", policy.label());
            assert_eq!(planner_from_env(), Ok(Some(policy)));
        }
        for bad in ["greedy", "Estimate", "SIMPLI", ""] {
            std::env::set_var("TQ_PLANNER", bad);
            let err = planner_from_env().unwrap_err();
            assert!(
                err.contains("TQ_PLANNER") && err.contains("syntactic"),
                "{err}"
            );
        }
        std::env::remove_var("TQ_PLANNER");
    }
}
