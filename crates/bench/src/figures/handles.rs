//! §4.1 and §4.4: handle-management experiments.
//!
//! * §4.1 — "Hash table: Rids or Handles?": the same CHJ join with the
//!   operator table keyed on 8-byte rids vs. full 60-byte handles.
//! * §4.4 — "On Improving the Management of Objects in Memory": the
//!   paper *proposes* smaller literal handles and bulk allocation but
//!   never measured them; this ablation does, by re-running Figure 7
//!   and a Figure 11 cell under
//!   [`CostModel::sparc20_improved_handles`].

use crate::harness::{build_db, run_join_cell};
use crate::parallel::run_cells;
use tq_pagestore::CostModel;
use tq_query::join::JoinOptions;
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{seq_scan, sorted_index_scan, HashKeyMode, JoinAlgo};
use tq_workload::{patient_attr, DbShape, Organization};

/// §4.1 measurement.
#[derive(Clone, Debug)]
pub struct RidVsHandle {
    /// CHJ with rid keys: seconds, table MB.
    pub rid: (f64, f64),
    /// CHJ with handle keys: seconds, table MB.
    pub handle: (f64, f64),
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs the §4.1 experiment on the 1:1000 database at (90, 90), the
/// two key modes as two worker jobs.
pub fn run_rid_vs_handle(scale: u32, jobs: usize) -> RidVsHandle {
    let master = build_db(DbShape::Db1, Organization::ClassClustered, scale);
    let cells: Vec<_> = [HashKeyMode::Rid, HashKeyMode::Handle]
        .iter()
        .map(|&mode| {
            let master = &master;
            move || {
                let mut db = master.clone();
                let opts = JoinOptions {
                    hash_key: mode,
                    ..JoinOptions::default()
                };
                let cell = run_join_cell(&mut db, JoinAlgo::Chj, 90, 90, &opts);
                (cell.secs, cell.report.hash_table_bytes as f64 / 1e6)
            }
        })
        .collect();
    let measured = run_cells(cells, jobs);
    RidVsHandle {
        rid: measured[0],
        handle: measured[1],
        scale,
    }
}

/// Prints the §4.1 comparison.
pub fn print_rid_vs_handle(r: &RidVsHandle) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Section 4.1: Hash table — Rids or Handles? (CHJ, 1:1000, 90/90)"
    )
    .unwrap();
    writeln!(out, "  (scale 1/{})", r.scale).unwrap();
    writeln!(out, "  key kind   elapsed        table size").unwrap();
    writeln!(out, "  Rids      {:>9.2}s  {:>11.2} MB", r.rid.0, r.rid.1).unwrap();
    writeln!(
        out,
        "  Handles   {:>9.2}s  {:>11.2} MB",
        r.handle.0, r.handle.1
    )
    .unwrap();
    writeln!(
        out,
        "  handles cost {:.2}x the rid table (the paper's conclusion: hash rids)",
        r.handle.0 / r.rid.0
    )
    .unwrap();
    out
}

/// §4.4 ablation: one workload under the legacy and the improved
/// handle regimes.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Workload label.
    pub label: &'static str,
    /// Seconds under the measured (legacy) O2 handle costs.
    pub legacy_secs: f64,
    /// Seconds with §4.4's improvements (small literal handles, bulk
    /// allocation).
    pub improved_secs: f64,
}

/// The §4.4 ablation results.
pub struct HandleAblation {
    /// One row per workload.
    pub rows: Vec<AblationRow>,
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs the ablation: the legacy and improved handle regimes as two
/// worker jobs over clones of one master database.
pub fn run_ablation(scale: u32, jobs: usize) -> HandleAblation {
    let master = build_db(DbShape::Db1, Organization::ClassClustered, scale);
    let regimes: Vec<_> = [false, true]
        .iter()
        .map(|&improved| {
            let master = &master;
            move || {
                let mut db = master.clone();
                if improved {
                    db.store
                        .stack_mut()
                        .set_model(CostModel::sparc20_improved_handles());
                }
                // Workload 1: the Figure 7 no-index scan at 90%
                // (handle-bound).
                let sel = Selection {
                    collection: "Patients".into(),
                    attr: patient_attr::NUM,
                    cmp: CmpOp::Lt,
                    key: db.num_selectivity_key(90),
                    residual: vec![],
                    project: patient_attr::AGE,
                    result_mode: ResultMode::Persistent,
                };
                let (_, scan_secs) = db.measure_cold(|db| seq_scan(&mut db.store, &sel, false));
                // Workload 2: the sorted index scan at 90%.
                let num_idx = db.idx_patient_num.clone();
                let (_, sorted_secs) =
                    db.measure_cold(|db| sorted_index_scan(&mut db.store, &num_idx, &sel, false));
                // Workload 3: the Figure 11 (90,90) NOJOIN
                // (navigation-heavy).
                let cell =
                    run_join_cell(&mut db, JoinAlgo::Nojoin, 90, 90, &JoinOptions::default());
                [
                    ("Fig 7 no-index scan, 90% selectivity", scan_secs),
                    ("Fig 7 sorted index scan, 90% selectivity", sorted_secs),
                    ("Fig 11 NOJOIN (90,90)", cell.secs),
                ]
            }
        })
        .collect();
    let measured = run_cells(regimes, jobs);
    let [legacy, improved] = measured.as_slice() else {
        unreachable!("two regimes");
    };
    let rows = legacy
        .iter()
        .zip(improved.iter())
        .map(|(&(label, legacy_secs), &(_, improved_secs))| AblationRow {
            label,
            legacy_secs,
            improved_secs,
        })
        .collect();
    HandleAblation { rows, scale }
}

/// Prints the ablation.
pub fn print_ablation(a: &HandleAblation) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Section 4.4 ablation: legacy handles vs proposed improvements \
         (small literal handles + bulk allocation)"
    )
    .unwrap();
    writeln!(out, "  (scale 1/{})", a.scale).unwrap();
    writeln!(
        out,
        "  workload                                       legacy     improved   speedup"
    )
    .unwrap();
    for r in &a.rows {
        writeln!(
            out,
            "  {:<44} {:>8.2}s  {:>9.2}s  {:>7.2}x",
            r.label,
            r.legacy_secs,
            r.improved_secs,
            r.legacy_secs / r.improved_secs,
        )
        .unwrap();
    }
    out
}
