//! Extension: the §5.3 association-ordered organization.
//!
//! The paper proposes (after Carey & Lapis) storing patients and
//! doctors "separately, but according to the way they are associated
//! to each other", and predicts: "simple selections and hash-joins
//! would perform as in the class clustering case while the performance
//! of NOJOIN and NL algorithms would remain the same [as composition
//! clustering]". This experiment builds that organization and checks
//! the prediction.

use crate::harness::{build_db, run_join_cell};
use crate::parallel::run_cells;
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{seq_scan, JoinAlgo, JoinOptions};
use tq_workload::{patient_attr, Database, DbShape, Organization};

/// Seconds for the reference workloads under one organization.
#[derive(Clone, Copy, Debug)]
pub struct OrgRow {
    /// Simple selection: full scan of Patients at 50% selectivity.
    pub selection_secs: f64,
    /// PHJ at (10, 10).
    pub phj_secs: f64,
    /// NL at (10, 10).
    pub nl_secs: f64,
    /// NOJOIN at (10, 10).
    pub nojoin_secs: f64,
}

/// The three-way comparison.
pub struct AssocFigure {
    /// Class clustering.
    pub class: OrgRow,
    /// Composition clustering.
    pub composition: OrgRow,
    /// Association-ordered class files.
    pub assoc: OrgRow,
    /// Scale divisor used.
    pub scale: u32,
}

/// The four workloads measured under every organization.
fn measurements(master: &Database, jobs: usize) -> OrgRow {
    let sel = Selection {
        collection: "Patients".into(),
        attr: patient_attr::MRN,
        cmp: CmpOp::Lt,
        residual: vec![],
        key: master.patient_selectivity_key(50),
        project: patient_attr::AGE,
        result_mode: ResultMode::Transient,
    };
    let cells: Vec<Box<dyn FnOnce() -> f64 + Send + '_>> = vec![
        Box::new(|| {
            let mut db = master.clone();
            db.measure_cold(|db| seq_scan(&mut db.store, &sel, false)).1
        }),
        Box::new(|| {
            let mut db = master.clone();
            run_join_cell(&mut db, JoinAlgo::Phj, 10, 10, &JoinOptions::default()).secs
        }),
        Box::new(|| {
            let mut db = master.clone();
            run_join_cell(&mut db, JoinAlgo::Nl, 10, 10, &JoinOptions::default()).secs
        }),
        Box::new(|| {
            let mut db = master.clone();
            run_join_cell(&mut db, JoinAlgo::Nojoin, 10, 10, &JoinOptions::default()).secs
        }),
    ];
    let secs = run_cells(cells, jobs);
    OrgRow {
        selection_secs: secs[0],
        phj_secs: secs[1],
        nl_secs: secs[2],
        nojoin_secs: secs[3],
    }
}

/// Runs the comparison on the 1:3 database.
pub fn run(scale: u32, jobs: usize) -> AssocFigure {
    let class = build_db(DbShape::Db2, Organization::ClassClustered, scale);
    let comp = build_db(DbShape::Db2, Organization::Composition, scale);
    let assoc = build_db(DbShape::Db2, Organization::AssociationOrdered, scale);
    AssocFigure {
        class: measurements(&class, jobs),
        composition: measurements(&comp, jobs),
        assoc: measurements(&assoc, jobs),
        scale,
    }
}

/// Prints the comparison against the paper's prediction.
pub fn print(fig: &AssocFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Extension (paper §5.3): association-ordered class files, 1:3 database (scale 1/{})",
        fig.scale.max(1)
    )
    .unwrap();
    writeln!(
        out,
        "  workload            class        composition  assoc-ordered   paper's prediction for assoc-ordered"
    )
    .unwrap();
    let rows = [
        (
            "Patients scan 50%",
            fig.class.selection_secs,
            fig.composition.selection_secs,
            fig.assoc.selection_secs,
            "like class",
        ),
        (
            "PHJ (10,10)",
            fig.class.phj_secs,
            fig.composition.phj_secs,
            fig.assoc.phj_secs,
            "like class",
        ),
        (
            "NL (10,10)",
            fig.class.nl_secs,
            fig.composition.nl_secs,
            fig.assoc.nl_secs,
            "like composition",
        ),
        (
            "NOJOIN (10,10)",
            fig.class.nojoin_secs,
            fig.composition.nojoin_secs,
            fig.assoc.nojoin_secs,
            "like composition",
        ),
    ];
    for (label, c, m, a, prediction) in rows {
        writeln!(
            out,
            "  {label:<18} {c:>9.1}s  {m:>11.1}s  {a:>12.1}s   {prediction}"
        )
        .unwrap();
    }
    out
}
