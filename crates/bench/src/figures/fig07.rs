//! Figure 7 (and the Figure 9 decomposition): sorted unclustered index
//! scan vs. no index.
//!
//! "Not only our indexes were still very good when their use
//! potentially augmented the number of I/Os ... but even after adding
//! the cost of sorting 1.8 millions of addresses (in the 90% case),
//! they remained good."

use crate::harness::build_db;
use crate::paper::FIG7_SORTED_VS_NOINDEX;
use crate::parallel::run_cells;
use tq_query::explain::CostBreakdown;
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{seq_scan, sorted_index_scan};
use tq_workload::{patient_attr, Database, DbShape, Organization};

/// One measured row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Selectivity in percent.
    pub pct: u32,
    /// Sorted-index-scan seconds and breakdown.
    pub sorted_secs: f64,
    /// Cost decomposition of the sorted scan.
    pub sorted_breakdown: CostBreakdown,
    /// Full-scan seconds and breakdown.
    pub scan_secs: f64,
    /// Cost decomposition of the full scan.
    pub scan_breakdown: CostBreakdown,
    /// Rids sorted by the index plan.
    pub rids_sorted: u64,
}

/// The regenerated figure.
pub struct Fig07 {
    /// Rows by ascending selectivity.
    pub rows: Vec<Row>,
    /// Scale divisor used.
    pub scale: u32,
}

fn selection(db: &Database, pct: u32) -> Selection {
    Selection {
        collection: "Patients".into(),
        attr: patient_attr::NUM,
        cmp: CmpOp::Lt,
        residual: vec![],
        key: db.num_selectivity_key(pct),
        project: patient_attr::AGE,
        result_mode: ResultMode::Persistent,
    }
}

/// Runs the figure, one worker job per selectivity.
pub fn run(scale: u32, jobs: usize) -> Fig07 {
    let master = build_db(DbShape::Db1, Organization::ClassClustered, scale);
    let cells: Vec<_> = [10u32, 30, 60, 90]
        .iter()
        .map(|&pct| {
            let master = &master;
            move || {
                let mut db = master.clone();
                let sel = selection(&db, pct);
                let num_idx = db.idx_patient_num.clone();
                let (report, sorted_secs) =
                    db.measure_cold(|db| sorted_index_scan(&mut db.store, &num_idx, &sel, false));
                let sorted_breakdown = CostBreakdown::from_clock(db.store.clock());
                let (_, scan_secs) = db.measure_cold(|db| seq_scan(&mut db.store, &sel, false));
                let scan_breakdown = CostBreakdown::from_clock(db.store.clock());
                Row {
                    pct,
                    sorted_secs,
                    sorted_breakdown,
                    scan_secs,
                    scan_breakdown,
                    rids_sorted: report.rids_sorted,
                }
            }
        })
        .collect();
    let rows = run_cells(cells, jobs);
    for r in &rows {
        eprintln!(
            "  {:>2}%  sorted {:>10.2}s   scan {:>10.2}s   ({} rids sorted)",
            r.pct, r.sorted_secs, r.scan_secs, r.rids_sorted
        );
    }
    Fig07 { rows, scale }
}

/// Prints the Figure 7 table plus the Figure 9 decomposition.
pub fn print(fig: &Fig07) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Figure 7: Comparing Sorted Unclustered Index with No Index (time in sec)"
    )
    .unwrap();
    if fig.scale > 1 {
        writeln!(
            out,
            "  (scale 1/{}; paper columns are full scale)",
            fig.scale
        )
        .unwrap();
    }
    writeln!(
        out,
        "  sel%   sorted-index    no-index     ratio   paper-sorted  paper-noindex  paper-ratio"
    )
    .unwrap();
    for r in &fig.rows {
        let paper = FIG7_SORTED_VS_NOINDEX.iter().find(|&&(p, _, _)| p == r.pct);
        let (ps, pn) = paper
            .map(|&(_, s, n)| (s, n))
            .unwrap_or((f64::NAN, f64::NAN));
        writeln!(
            out,
            "  {:>3}  {:>12.2}  {:>10.2}  {:>8.2}  {:>12.2}  {:>13.2}  {:>11.2}",
            r.pct,
            r.sorted_secs,
            r.scan_secs,
            r.sorted_secs / r.scan_secs,
            ps,
            pn,
            ps / pn,
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "Figure 9: where the time goes (cost decomposition)").unwrap();
    for r in &fig.rows {
        writeln!(out, "  sel {:>2}%:", r.pct).unwrap();
        writeln!(out, "    sorted index scan: {}", r.sorted_breakdown).unwrap();
        writeln!(out, "    standard scan:     {}", r.scan_breakdown).unwrap();
        let d = r.scan_breakdown.diff(&r.sorted_breakdown);
        writeln!(out, "    scan minus sorted: {d}").unwrap();
    }
    out
}
