//! Extension: warm-cache runs.
//!
//! The paper measured only cold executions ("the server was shutdown
//! at the end of each evaluation"). This experiment re-runs the
//! Figure 12 cells warm and splits what the caches absorb (I/O) from
//! what they cannot (the per-object handle CPU of §4): navigation
//! algorithms stay expensive even when every page is resident.

use crate::harness::{run_join_cell, run_join_cell_warm};
use crate::parallel::run_cells;
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{build, BuildConfig, DbShape, Organization};

/// One cold/warm pair.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Selectivities (patients, providers).
    pub cell: (u32, u32),
    /// Algorithm.
    pub algo: JoinAlgo,
    /// Cold seconds / disk pages.
    pub cold: (f64, u64),
    /// Warm seconds / disk pages.
    pub warm: (f64, u64),
}

/// The regenerated experiment.
pub struct WarmFigure {
    /// All rows.
    pub rows: Vec<Row>,
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs cold-vs-warm on the 1:3 class-clustered database.
///
/// Uses the paper's full-size 32 MB client cache with the scaled
/// database, so warm residency is actually possible — with both scaled
/// together (the figure harness default) nothing ever stays warm and
/// the comparison is vacuous.
pub fn run(scale: u32, jobs: usize) -> WarmFigure {
    let mut cfg = BuildConfig::scaled(DbShape::Db2, Organization::ClassClustered, scale);
    cfg.cache = tq_pagestore::CacheConfig::paper_default();
    let master = build(&cfg);
    let cells: Vec<_> = [(10u32, 10u32), (90, 90)]
        .iter()
        .flat_map(|&cell| JoinAlgo::all().into_iter().map(move |algo| (cell, algo)))
        .map(|(cell, algo)| {
            let master = &master;
            move || {
                let mut db = master.clone();
                let cold = run_join_cell(&mut db, algo, cell.0, cell.1, &JoinOptions::default());
                let warm =
                    run_join_cell_warm(&mut db, algo, cell.0, cell.1, &JoinOptions::default());
                assert_eq!(cold.results, warm.results);
                Row {
                    cell,
                    algo,
                    cold: (cold.secs, cold.io.d2sc_read_pages),
                    warm: (warm.secs, warm.io.d2sc_read_pages),
                }
            }
        })
        .collect();
    let rows = run_cells(cells, jobs);
    for r in &rows {
        eprintln!(
            "  ({},{}) {:<6} cold {:>9.1}s/{:>7} pages   warm {:>9.1}s/{:>7} pages",
            r.cell.0,
            r.cell.1,
            r.algo.label(),
            r.cold.0,
            r.cold.1,
            r.warm.0,
            r.warm.1
        );
    }
    WarmFigure { rows, scale }
}

/// Prints the table.
pub fn print(fig: &WarmFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Extension: cold vs warm runs, 1:3 database, class clustering (scale 1/{})",
        fig.scale.max(1)
    )
    .unwrap();
    writeln!(
        out,
        "  cell      algo     cold(s)   cold-pages    warm(s)   warm-pages   warm/cold"
    )
    .unwrap();
    for r in &fig.rows {
        writeln!(
            out,
            "  ({:>2},{:>2})  {:<6} {:>9.1}  {:>11}  {:>9.1}  {:>11}  {:>9.2}",
            r.cell.0,
            r.cell.1,
            r.algo.label(),
            r.cold.0,
            r.cold.1,
            r.warm.0,
            r.warm.1,
            r.warm.0 / r.cold.0,
        )
        .unwrap();
    }
    writeln!(
        out,
        "  caches absorb the I/O where the data fits; the handle CPU never goes away (§4)."
    )
    .unwrap();
    out
}
