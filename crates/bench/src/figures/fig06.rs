//! Figure 6: selection I/O — unclustered index scan vs. full scan.
//!
//! The paper's §4.2 experiment: select patients on the random key
//! `num` at selectivities from 0.1% to 90%, with and without the
//! (unclustered) index, and count page reads. The hard truth: "the
//! unclustered index increases the number of pages that have to be
//! read once we reach a threshold selectivity situated between 1 and
//! 5%" — objects are accessed truly randomly, so pages are read more
//! than once.

use crate::harness::{build_db, operator_rows};
use crate::parallel::run_cells;
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{index_scan, seq_scan, ExecTrace};
use tq_statsdb::{ExtentDesc, QueryDesc, Stat, StatsDb, SystemDesc};
use tq_workload::{patient_attr, Database, DbShape, Organization};

/// Selectivities measured, in tenths of a percent (so 1 = 0.1%).
pub const SELECTIVITIES_PERMILLE: [u32; 7] = [1, 10, 50, 100, 300, 600, 900];

/// One measured row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Selectivity in tenths of a percent.
    pub permille: u32,
    /// Physical pages read by the unclustered index scan.
    pub index_pages: u64,
    /// Simulated seconds for the index scan.
    pub index_secs: f64,
    /// Physical pages read by the full scan.
    pub scan_pages: u64,
    /// Simulated seconds for the full scan.
    pub scan_secs: f64,
    /// Rows selected.
    pub selected: u64,
}

/// The regenerated figure.
pub struct Fig06 {
    /// Measured rows, by ascending selectivity.
    pub rows: Vec<Row>,
    /// Scale divisor used.
    pub scale: u32,
    /// All runs as Figure 3 records.
    pub stats: StatsDb,
}

fn selection(db: &Database, permille: u32) -> Selection {
    Selection {
        collection: "Patients".into(),
        attr: patient_attr::NUM,
        cmp: CmpOp::Lt,
        residual: vec![],
        key: db.patient_count as i64 * permille as i64 / 1000,
        project: patient_attr::AGE,
        result_mode: ResultMode::Persistent,
    }
}

fn stat(db: &Database, algo: &str, permille: u32, secs: f64, trace: &ExecTrace) -> Stat {
    Stat {
        numtest: 0,
        query: QueryDesc {
            cold: true,
            projection_type: "pa.age".into(),
            // Selectivity is recorded in tenths of a percent here: the
            // Figure 6 sweep goes below 1%.
            selectivities: vec![("Patient(permille)".into(), permille)],
            text: format!("select pa.age from pa in Patients where pa.num < k ({permille}/1000)"),
        },
        database: vec![ExtentDesc {
            classname: "Provider".into(),
            size: db.provider_count,
            associations: vec![("Patient".into(), db.config.shape.mean_fanout())],
        }],
        cluster: db.config.organization.label().into(),
        algo: algo.into(),
        system: SystemDesc::paper_default(),
        cc_pagefaults: db.store.stats().client_misses,
        cc_lookups: db.store.stats().client_hits + db.store.stats().client_misses,
        elapsed_time: secs,
        rpcs_number: db.store.stats().sc2cc_read_pages,
        rpcs_total_mb: db.store.stats().rpc_total_bytes() as f64 / 1e6,
        d2sc_read_pages: db.store.stats().d2sc_read_pages,
        sc2cc_read_pages: db.store.stats().sc2cc_read_pages,
        cc_miss_rate: db.store.stats().client_miss_rate(),
        sc_miss_rate: db.store.stats().server_miss_rate(),
        operators: operator_rows(trace),
    }
}

/// Runs the figure, one worker job per selectivity.
pub fn run(scale: u32, jobs: usize) -> Fig06 {
    let master = build_db(DbShape::Db1, Organization::ClassClustered, scale);
    let mut rows = Vec::new();
    let mut stats = StatsDb::new();
    let cells: Vec<_> = SELECTIVITIES_PERMILLE
        .iter()
        .map(|&permille| {
            let master = &master;
            move || {
                let mut db = master.clone();
                let sel = selection(&db, permille);
                let num_idx = db.idx_patient_num.clone();
                let (report_idx, index_secs) =
                    db.measure_cold(|db| index_scan(&mut db.store, &num_idx, &sel, false));
                let index_pages = db.store.stats().d2sc_read_pages;
                let index_stat = stat(&db, "IndexScan", permille, index_secs, &report_idx.trace);
                let (report_seq, scan_secs) =
                    db.measure_cold(|db| seq_scan(&mut db.store, &sel, false));
                let scan_pages = db.store.stats().d2sc_read_pages;
                let scan_stat = stat(&db, "SeqScan", permille, scan_secs, &report_seq.trace);
                assert_eq!(report_idx.selected, report_seq.selected);
                let row = Row {
                    permille,
                    index_pages,
                    index_secs,
                    scan_pages,
                    scan_secs,
                    selected: report_idx.selected,
                };
                (row, index_stat, scan_stat)
            }
        })
        .collect();
    for (row, index_stat, scan_stat) in run_cells(cells, jobs) {
        stats.insert(index_stat);
        stats.insert(scan_stat);
        eprintln!(
            "  {:>5}‰  index {:>8} pages {:>10.2}s   scan {:>8} pages {:>10.2}s",
            row.permille, row.index_pages, row.index_secs, row.scan_pages, row.scan_secs
        );
        rows.push(row);
    }
    Fig06 { rows, scale, stats }
}

/// The measured crossover: the lowest selectivity (in ‰) at which the
/// index scan reads more pages than the full scan.
pub fn crossover_permille(fig: &Fig06) -> Option<u32> {
    fig.rows
        .iter()
        .find(|r| r.index_pages > r.scan_pages)
        .map(|r| r.permille)
}

/// Prints the table.
pub fn print(fig: &Fig06) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6: selection on Patients.num — unclustered index vs no index"
    )
    .unwrap();
    if fig.scale > 1 {
        writeln!(out, "  (scale 1/{})", fig.scale).unwrap();
    }
    writeln!(
        out,
        "  selectivity   selected    index pages   index secs    scan pages    scan secs"
    )
    .unwrap();
    for r in &fig.rows {
        writeln!(
            out,
            "  {:>9.1}%  {:>9}  {:>12}  {:>10.2}  {:>12}  {:>10.2}",
            r.permille as f64 / 10.0,
            r.selected,
            r.index_pages,
            r.index_secs,
            r.scan_pages,
            r.scan_secs,
        )
        .unwrap();
    }
    match crossover_permille(fig) {
        Some(p) => writeln!(
            out,
            "  crossover: index reads more pages than the scan from {:.1}% selectivity \
             (paper: between 1% and 5%)",
            p as f64 / 10.0
        )
        .unwrap(),
        None => writeln!(out, "  no crossover observed").unwrap(),
    }
    out
}
