//! Figure 10: hash-table size approximations, formula vs. measurement.

use crate::harness::{build_db, run_join_cell};
use crate::paper::FIG10_HASH_SIZES;
use crate::parallel::run_cells;
use tq_query::{hash_table_bytes, JoinAlgo};
use tq_workload::{DbShape, Organization};

/// One row: the paper's approximation, our formula, and (when run) the
/// executor's actual table size.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Algorithm.
    pub algo: JoinAlgo,
    /// Providers in the (full-scale) database.
    pub providers: u64,
    /// Mean fan-out.
    pub fanout: u32,
    /// Selectivity on patients, percent.
    pub pat: u32,
    /// Selectivity on providers, percent.
    pub prov: u32,
    /// The paper's MB.
    pub paper_mb: f64,
    /// Our closed-form MB at full scale.
    pub formula_mb: f64,
    /// Executor-measured MB (at the run scale), if measured.
    pub measured_mb: Option<f64>,
    /// Swap faults the run incurred, if measured.
    pub swap_faults: Option<u64>,
}

/// The regenerated figure.
pub struct Fig10 {
    /// All eight rows.
    pub rows: Vec<Row>,
    /// Scale divisor used for the measured columns (0 = not measured).
    pub scale: u32,
}

/// Runs the figure, one worker job per row. With `measure` set,
/// actually executes the joins (at `scale`, each on its own clone of
/// the master database) and reports the executor's table sizes too.
pub fn run(scale: u32, measure: bool, jobs: usize) -> Fig10 {
    let db1 = measure.then(|| build_db(DbShape::Db1, Organization::ClassClustered, scale));
    let db2 = measure.then(|| build_db(DbShape::Db2, Organization::ClassClustered, scale));
    let cells: Vec<_> = FIG10_HASH_SIZES
        .into_iter()
        .map(|(algo, providers, fanout, pat, prov, paper_mb)| {
            let db1 = db1.as_ref();
            let db2 = db2.as_ref();
            move || {
                let children = providers * fanout as u64;
                let formula_mb = hash_table_bytes(
                    algo,
                    providers,
                    providers * prov as u64 / 100,
                    children * pat as u64 / 100,
                ) as f64
                    / 1e6;
                let master = match fanout {
                    1_000 => db1,
                    3 => db2,
                    _ => None,
                };
                let (measured_mb, swap_faults) = match master {
                    Some(master) => {
                        let mut db = master.clone();
                        let cell = run_join_cell(&mut db, algo, pat, prov, &Default::default());
                        (
                            Some(cell.report.hash_table_bytes as f64 / 1e6),
                            Some(cell.report.swap_faults),
                        )
                    }
                    None => (None, None),
                };
                Row {
                    algo,
                    providers,
                    fanout,
                    pat,
                    prov,
                    paper_mb,
                    formula_mb,
                    measured_mb,
                    swap_faults,
                }
            }
        })
        .collect();
    let rows = run_cells(cells, jobs);
    Fig10 { rows, scale }
}

/// Prints the table.
pub fn print(fig: &Fig10) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "Figure 10: Approximation of the hash table sizes").unwrap();
    writeln!(
        out,
        "  algo  providers  children   sel.pat  sel.prov   paper MB   formula MB   measured MB (1/{})   swap faults",
        fig.scale.max(1)
    )
    .unwrap();
    for r in &fig.rows {
        let measured = r
            .measured_mb
            .map(|m| format!("{m:>11.4}"))
            .unwrap_or_else(|| "          -".into());
        let faults = r
            .swap_faults
            .map(|f| format!("{f:>11}"))
            .unwrap_or_else(|| "          -".into());
        writeln!(
            out,
            "  {:<5} {:>9}  1:{:<6}  {:>7}  {:>8}  {:>9.4}  {:>11.4}  {measured}  {faults}",
            r.algo.label(),
            r.providers,
            r.fanout,
            r.pat,
            r.prov,
            r.paper_mb,
            r.formula_mb,
        )
        .unwrap();
    }
    writeln!(
        out,
        "  memory budget for one operator: {} MB — tables above it swap",
        tq_pagestore::CostModel::sparc20().operator_memory_budget / (1 << 20)
    )
    .unwrap();
    out
}
