//! Plan quality for N-way binding chains: the three ordering policies
//! (estimator-driven, Simpli-Squared size-only, syntactic) measured
//! side by side on the depth-3 and depth-4 chains through the
//! Provider↔Patient reference cycle.
//!
//! The question the figure answers is the planner's reason to exist:
//! how much does join *order* (and algorithm assignment) cost when it
//! is chosen without looking at the data? Every policy returns the
//! same result multiset (pinned by `tests/multiway_equivalence.rs` in
//! `tq-query`), so the only thing that varies is time — the measured
//! `ratio` column is plan quality.

use crate::harness::build_db;
use crate::parallel::run_cells;
use tq_query::{render_chain_plan, PlannerPolicy};
use tq_server::measure::{chain_stat_record, compile_chain_spec, run_chain_cell};
use tq_statsdb::StatsDb;
use tq_workload::{Database, DbShape, Organization};

/// The selectivity cells: `(patient %, provider %)`. One cheap side,
/// one expensive side, and the symmetric middle — the cases where the
/// policies' orders actually diverge.
pub const CELLS: [(u32, u32); 3] = [(10, 90), (90, 10), (50, 50)];

/// The chain depths measured (depth 2 is served over the wire but has
/// no ordering freedom worth a figure row).
pub const DEPTHS: [u32; 2] = [3, 4];

/// One measured (depth × cell × policy) run.
#[derive(Clone, Debug)]
pub struct MultiwayRow {
    /// Binding count.
    pub depth: u32,
    /// Patient-side selectivity (percent).
    pub pat: u32,
    /// Provider-side selectivity (percent).
    pub prov: u32,
    /// The ordering policy.
    pub policy: PlannerPolicy,
    /// The chosen plan, rendered (`plan[simpli] est 3.50s: x:…`).
    pub plan: String,
    /// The policy's own cost estimate for its pick.
    pub estimated_secs: f64,
    /// Measured simulated seconds (cold run).
    pub secs: f64,
    /// Result tuples — identical across policies at the same cell.
    pub results: u64,
}

/// The regenerated figure.
pub struct MultiwayFigure {
    /// Database shape.
    pub shape: DbShape,
    /// Physical organization.
    pub org: Organization,
    /// Scale divisor used.
    pub scale: u32,
    /// Policies measured (all three, or the `TQ_PLANNER` selection).
    pub policies: Vec<PlannerPolicy>,
    /// Every run, in (depth, cell, policy) order.
    pub rows: Vec<MultiwayRow>,
    /// Every measured run, stored the §3.3 way.
    pub stats: StatsDb,
}

/// Runs the figure: every depth × selectivity cell × policy, each on
/// its own cold clone of the master database, fanned across `jobs`
/// workers. `policy` narrows to one ordering policy (the `TQ_PLANNER`
/// knob); `None` measures all three side by side.
pub fn run(
    shape: DbShape,
    org: Organization,
    scale: u32,
    jobs: usize,
    policy: Option<PlannerPolicy>,
) -> MultiwayFigure {
    let master = build_db(shape, org, scale);
    run_on(&master, scale, jobs, policy)
}

/// Like [`run`], reusing an existing database as the master.
pub fn run_on(
    master: &Database,
    scale: u32,
    jobs: usize,
    policy: Option<PlannerPolicy>,
) -> MultiwayFigure {
    let policies: Vec<PlannerPolicy> = match policy {
        Some(p) => vec![p],
        None => PlannerPolicy::all().to_vec(),
    };
    let mut grid = Vec::new();
    for depth in DEPTHS {
        for (pat, prov) in CELLS {
            for &policy in &policies {
                grid.push((depth, pat, prov, policy));
            }
        }
    }
    let cells: Vec<_> = grid
        .into_iter()
        .map(|(depth, pat, prov, policy)| {
            move || {
                let mut db = master.clone();
                let cell = run_chain_cell(&mut db, depth, pat, prov, policy, None)
                    .expect("figure depths are served");
                let spec =
                    compile_chain_spec(&db, depth, pat, prov).expect("compiled once already");
                let plan =
                    render_chain_plan(&spec, &cell.choice.plan, policy, cell.choice.estimated_secs);
                let stat = chain_stat_record(&db, &cell, depth, pat, prov);
                (
                    MultiwayRow {
                        depth,
                        pat,
                        prov,
                        policy,
                        plan,
                        estimated_secs: cell.choice.estimated_secs,
                        secs: cell.secs,
                        results: cell.results,
                    },
                    stat,
                )
            }
        })
        .collect();
    let mut stats = StatsDb::new();
    let mut rows = Vec::new();
    for (row, stat) in run_cells(cells, jobs) {
        stats.insert(stat);
        eprintln!(
            "  depth {} ({:>2},{:>2}) {:<9} {:>10.2}s  results={}",
            row.depth,
            row.pat,
            row.prov,
            row.policy.label(),
            row.secs,
            row.results,
        );
        rows.push(row);
    }
    MultiwayFigure {
        shape: master.config.shape,
        org: master.config.organization,
        scale,
        policies,
        rows,
        stats,
    }
}

/// Prints the plan-quality table: per (depth, cell), every policy's
/// pick with its estimate, its measured time, and the ratio to the
/// cell's best measured time (1.00 = this policy found the winner).
pub fn print(fig: &MultiwayFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Plan quality: N-way chain join ordering ({:?} / {}, scale 1/{})",
        fig.shape,
        fig.org.label(),
        fig.scale.max(1)
    )
    .unwrap();
    writeln!(
        out,
        "  depth  sel.pat  sel.prov  policy     est(s)    measured(s)  ratio  results"
    )
    .unwrap();
    for depth in DEPTHS {
        for (pat, prov) in CELLS {
            let cell_rows: Vec<&MultiwayRow> = fig
                .rows
                .iter()
                .filter(|r| r.depth == depth && r.pat == pat && r.prov == prov)
                .collect();
            let Some(best) = cell_rows
                .iter()
                .map(|r| r.secs)
                .min_by(|a, b| a.total_cmp(b))
            else {
                continue;
            };
            for (i, row) in cell_rows.iter().enumerate() {
                writeln!(
                    out,
                    "  {:>5}  {:>7}  {:>8}  {:<9} {:>8.2}  {:>12.2}  {:>5.2}  results={}",
                    if i == 0 {
                        depth.to_string()
                    } else {
                        String::new()
                    },
                    if i == 0 {
                        pat.to_string()
                    } else {
                        String::new()
                    },
                    if i == 0 {
                        prov.to_string()
                    } else {
                        String::new()
                    },
                    row.policy.label(),
                    row.estimated_secs,
                    row.secs,
                    row.secs / best,
                    row.results,
                )
                .unwrap();
            }
        }
    }
    writeln!(out, "\nChosen plans:").unwrap();
    for row in &fig.rows {
        writeln!(
            out,
            "  depth {} ({:>2},{:>2}) {}",
            row.depth, row.pat, row.prov, row.plan
        )
        .unwrap();
    }
    out
}
