//! Figures 11–14: the join-algorithm comparison tables.

use crate::harness::{build_db, run_join_cell, stat_record};
use crate::paper;
use crate::parallel::run_cells;
use tq_query::{JoinAlgo, JoinOptions};
use tq_statsdb::{Filter, StatsDb};
use tq_workload::{Database, DbShape, Organization};

/// The four selectivity combinations of Figures 11–14:
/// `(patient %, provider %)`.
pub const CELLS: [(u32, u32); 4] = [(10, 10), (10, 90), (90, 10), (90, 90)];

/// One regenerated join figure.
pub struct JoinFigure {
    /// Database shape.
    pub shape: DbShape,
    /// Physical organization.
    pub org: Organization,
    /// Scale divisor used.
    pub scale: u32,
    /// Every measured run, stored the §3.3 way.
    pub stats: StatsDb,
}

impl JoinFigure {
    /// Measured ranking for one `(pat, prov)` cell, fastest first —
    /// queried back from the stats database.
    pub fn ranking(&self, pat: u32, prov: u32) -> Vec<(JoinAlgo, f64)> {
        let filter = Filter::any()
            .selectivity("Patient", pat)
            .selectivity("Provider", prov);
        self.stats
            .ranking(&filter)
            .into_iter()
            .map(|s| {
                let algo = JoinAlgo::all()
                    .into_iter()
                    .find(|a| a.label() == s.algo)
                    .expect("known algorithm");
                (algo, s.elapsed_time)
            })
            .collect()
    }

    /// The measured winner of a cell.
    pub fn winner(&self, pat: u32, prov: u32) -> (JoinAlgo, f64) {
        self.ranking(pat, prov)[0]
    }
}

/// Runs all 16 measurements of one join figure (4 algorithms × 4
/// selectivity cells) on a freshly built database, fanning the cells
/// across `jobs` workers.
pub fn run_join_figure(shape: DbShape, org: Organization, scale: u32, jobs: usize) -> JoinFigure {
    let db = build_db(shape, org, scale);
    run_join_figure_on(&db, scale, jobs)
}

/// Like [`run_join_figure`], reusing an existing database as the
/// master: every cell measures its own clone, so the master is left
/// untouched and cells are order-independent.
pub fn run_join_figure_on(db: &Database, scale: u32, jobs: usize) -> JoinFigure {
    let mut stats = StatsDb::new();
    let cells: Vec<_> = CELLS
        .iter()
        .flat_map(|&(pat, prov)| {
            JoinAlgo::all()
                .into_iter()
                .map(move |algo| (pat, prov, algo))
        })
        .map(|(pat, prov, algo)| {
            move || {
                let mut db = db.clone();
                let cell = run_join_cell(&mut db, algo, pat, prov, &JoinOptions::default());
                let stat = stat_record(&db, &cell, pat, prov);
                (pat, prov, cell, stat)
            }
        })
        .collect();
    for (pat, prov, cell, stat) in run_cells(cells, jobs) {
        stats.insert(stat);
        eprintln!(
            "  ({pat:>2},{prov:>2}) {:<6} {:>12.2}s  results={} io={} swap={}",
            cell.algo.label(),
            cell.secs,
            cell.results,
            cell.io.d2sc_read_pages,
            cell.report.swap_faults,
        );
    }
    JoinFigure {
        shape: db.config.shape,
        org: db.config.organization,
        scale,
        stats,
    }
}

/// Renders the `TQ_EXPLAIN` view: one per-operator counter table per
/// measured run, with the rows' field-wise sum and the query-level
/// `Stat` line below it — by the executor's attribution invariant the
/// two lines agree exactly.
pub fn print_explain(fig: &JoinFigure) -> String {
    explain_tables(&fig.stats)
}

/// The per-operator counter tables for any stats database — shared by
/// the join figures and the multiway plan-quality figure.
pub fn explain_tables(stats: &StatsDb) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for s in stats.all() {
        let pat = s.query.selectivity_on("Patient").unwrap_or(0);
        let prov = s.query.selectivity_on("Provider").unwrap_or(0);
        writeln!(
            out,
            "explain (pat {pat}, prov {prov}) {} [{}]:",
            s.algo, s.cluster
        )
        .unwrap();
        writeln!(
            out,
            "  {:<30} {:>9} {:>9} {:>9} {:>10} {:>11} {:>10}",
            "operator", "pages", "shipped", "c-miss", "h-gets", "cpu-ev", "secs"
        )
        .unwrap();
        let (mut pages, mut shipped, mut miss, mut gets, mut ev) = (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut nanos = 0u64;
        for op in &s.operators {
            writeln!(
                out,
                "  {:<30} {:>9} {:>9} {:>9} {:>10} {:>11} {:>10.2}",
                format!(
                    "{:indent$}{}({})",
                    "",
                    op.op,
                    op.label,
                    indent = 2 * op.depth as usize
                ),
                op.d2sc_read_pages,
                op.sc2cc_read_pages,
                op.client_misses,
                op.handle_gets,
                op.cpu_events,
                op.elapsed_secs(),
            )
            .unwrap();
            pages += op.d2sc_read_pages;
            shipped += op.sc2cc_read_pages;
            miss += op.client_misses;
            gets += op.handle_gets;
            ev += op.cpu_events;
            nanos += op.io_nanos + op.rpc_nanos + op.cpu_nanos + op.swap_nanos;
        }
        writeln!(
            out,
            "  {:<30} {:>9} {:>9} {:>9} {:>10} {:>11} {:>10.2}",
            "sum(operators)",
            pages,
            shipped,
            miss,
            gets,
            ev,
            nanos as f64 / 1e9,
        )
        .unwrap();
        writeln!(
            out,
            "  {:<30} {:>9} {:>9} {:>9} {:>10} {:>11} {:>10.2}",
            "query Stat",
            s.d2sc_read_pages,
            s.sc2cc_read_pages,
            s.cc_pagefaults,
            "",
            "",
            s.elapsed_time,
        )
        .unwrap();
        out.push('\n');
    }
    out
}

/// Prints the figure in the paper's layout (ranked, with time ratios),
/// paper numbers alongside when published.
pub fn print_join_figure(fig: &JoinFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let caption = match (fig.shape, fig.org) {
        (DbShape::Db1, Organization::ClassClustered) => {
            "Figure 11: One file per Class, 2x10^3 Providers, 2x10^6 Patients"
        }
        (DbShape::Db2, Organization::ClassClustered) => {
            "Figure 12: One file per Class, 10^6 Providers, 3x10^6 Patients"
        }
        (DbShape::Db1, Organization::Composition) => {
            "Figure 13: Composition Cluster, 2x10^3 Providers, 2x10^6 Patients"
        }
        (DbShape::Db2, Organization::Composition) => {
            "Figure 14: Composition Cluster, 10^6 Providers, 3x10^6 Patients"
        }
        (DbShape::Db1, Organization::Randomized) => {
            "Random file, 2x10^3 Providers, 2x10^6 Patients (summarized in Fig 15)"
        }
        (DbShape::Db2, Organization::Randomized) => {
            "Random file, 10^6 Providers, 3x10^6 Patients (summarized in Fig 15)"
        }
        (DbShape::Db1, Organization::AssociationOrdered) => {
            "Association-ordered class files (extension of paper §5.3), 2x10^3 Providers, 2x10^6 Patients"
        }
        (DbShape::Db2, Organization::AssociationOrdered) => {
            "Association-ordered class files (extension of paper §5.3), 10^6 Providers, 3x10^6 Patients"
        }
    };
    writeln!(out, "{caption}").unwrap();
    if fig.scale > 1 {
        writeln!(
            out,
            "  (measured at scale 1/{}; paper columns are full scale)",
            fig.scale
        )
        .unwrap();
    }
    writeln!(
        out,
        "  sel.pat  sel.prov  algo     ratio   measured(s)   paper(s)  paper-ratio"
    )
    .unwrap();
    let paper_cells = paper::join_figure(fig.shape, fig.org);
    for (pat, prov) in CELLS {
        let ranked = fig.ranking(pat, prov);
        let best = ranked[0].1;
        let paper_cell =
            paper_cells.and_then(|cells| cells.iter().find(|c| c.pat == pat && c.prov == prov));
        for (i, (algo, secs)) in ranked.iter().enumerate() {
            let paper_entry = paper_cell.map(|c| c.ranked[i]);
            let (paper_secs, paper_ratio) = match paper_cell.zip(paper_entry) {
                Some((c, _)) => {
                    // Paper value for *this* algorithm (not this rank).
                    let p = c.ranked.iter().find(|(a, _)| a == algo).unwrap().1;
                    (format!("{p:>9.2}"), format!("{:.2}", p / c.ranked[0].1))
                }
                None => ("        -".to_string(), "-".to_string()),
            };
            writeln!(
                out,
                "  {:>6}  {:>8}  {:<6} {:>6.2}  {:>12.2}  {}  {:>6}",
                if i == 0 {
                    pat.to_string()
                } else {
                    String::new()
                },
                if i == 0 {
                    prov.to_string()
                } else {
                    String::new()
                },
                algo.label(),
                secs / best,
                secs,
                paper_secs,
                paper_ratio,
            )
            .unwrap();
        }
    }
    out
}
