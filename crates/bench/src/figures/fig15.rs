//! Figure 15: summarizing results — winning algorithms across all
//! three physical organizations and both databases.

use crate::figures::joins::{run_join_figure, JoinFigure, CELLS};
use crate::paper::FIG15_WINNERS;
use tq_query::JoinAlgo;
use tq_workload::{DbShape, Organization};

/// One regenerated Figure 15 row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Database shape.
    pub shape: DbShape,
    /// Selectivity on patients / providers, percent.
    pub pat: u32,
    /// Selectivity on providers, percent.
    pub prov: u32,
    /// `(winner, secs)` under the randomized organization.
    pub random: (JoinAlgo, f64),
    /// `(winner, secs)` under class clustering.
    pub class: (JoinAlgo, f64),
    /// `(winner, secs)` under composition clustering.
    pub composition: (JoinAlgo, f64),
}

/// The regenerated summary plus the six underlying figures.
pub struct Fig15 {
    /// Eight rows (2 shapes × 4 selectivity cells).
    pub rows: Vec<Row>,
    /// The six detailed figures (keyed by shape/org inside).
    pub figures: Vec<JoinFigure>,
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs all six join figures (3 organizations × 2 shapes) and
/// summarizes the winners. The figures run one after another (each
/// needs its own built database); `jobs` parallelizes the 16 cells
/// inside each figure.
pub fn run(scale: u32, jobs: usize) -> Fig15 {
    let mut figures = Vec::new();
    for shape in [DbShape::Db1, DbShape::Db2] {
        for org in Organization::all() {
            eprintln!("== {shape:?} / {org:?} ==");
            figures.push(run_join_figure(shape, org, scale, jobs));
        }
    }
    let fig_of = |shape: DbShape, org: Organization| {
        figures
            .iter()
            .find(|f| f.shape == shape && f.org == org)
            .expect("all six figures ran")
    };
    let mut rows = Vec::new();
    for shape in [DbShape::Db1, DbShape::Db2] {
        for (pat, prov) in CELLS {
            rows.push(Row {
                shape,
                pat,
                prov,
                random: fig_of(shape, Organization::Randomized).winner(pat, prov),
                class: fig_of(shape, Organization::ClassClustered).winner(pat, prov),
                composition: fig_of(shape, Organization::Composition).winner(pat, prov),
            });
        }
    }
    Fig15 {
        rows,
        figures,
        scale,
    }
}

/// How many of the 24 winner cells agree with the paper.
pub fn winner_agreement(fig: &Fig15) -> (usize, usize) {
    let mut agree = 0;
    let mut total = 0;
    for row in &fig.rows {
        let paper = FIG15_WINNERS
            .iter()
            .find(|p| p.shape == row.shape && p.pat == row.pat && p.prov == row.prov)
            .expect("paper row");
        for (ours, theirs) in [
            (row.random.0, paper.random.0),
            (row.class.0, paper.class.0),
            (row.composition.0, paper.composition.0),
        ] {
            total += 1;
            if ours == theirs {
                agree += 1;
            }
        }
    }
    (agree, total)
}

/// Prints the summary in the paper's layout.
pub fn print(fig: &Fig15) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "Figure 15: Summarizing Results: Winning Algorithms").unwrap();
    if fig.scale > 1 {
        writeln!(out, "  (measured at scale 1/{})", fig.scale).unwrap();
    }
    writeln!(
        out,
        "  rel      sel.pat sel.prov |  random org        |  class cluster     |  composition"
    )
    .unwrap();
    writeln!(
        out,
        "                            |  ours    paper     |  ours    paper     |  ours    paper"
    )
    .unwrap();
    for row in &fig.rows {
        let paper = FIG15_WINNERS
            .iter()
            .find(|p| p.shape == row.shape && p.pat == row.pat && p.prov == row.prov)
            .expect("paper row");
        let rel = match row.shape {
            DbShape::Db1 => "1:1000",
            DbShape::Db2 => "1:3",
        };
        writeln!(
            out,
            "  {:<7} {:>7} {:>8} |  {:<7} {:<9} |  {:<7} {:<9} |  {:<7} {:<9}",
            rel,
            row.pat,
            row.prov,
            row.random.0.label(),
            paper.random.0.label(),
            row.class.0.label(),
            paper.class.0.label(),
            row.composition.0.label(),
            paper.composition.0.label(),
        )
        .unwrap();
    }
    let (agree, total) = winner_agreement(fig);
    writeln!(out, "  winner agreement with the paper: {agree}/{total}").unwrap();
    out
}
