//! §3.2: the bulk-loading pitfalls ("our first 4M-object load took 12
//! hours; it should take about one").

use tq_pagestore::CacheConfig;
use tq_workload::{load_experiment, DbShape, IndexTiming, LoadOptions, LoadReport};

/// One loading configuration and its outcome.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configuration label.
    pub label: &'static str,
    /// The knobs.
    pub options: LoadOptions,
    /// The outcome.
    pub report: LoadReport,
}

/// The regenerated experiment.
pub struct LoadingFigure {
    /// Sweep rows, from naive to tuned.
    pub rows: Vec<Row>,
    /// Scale divisor used.
    pub scale: u32,
}

/// One cumulative tuning step: a label and the knob it turns.
type Step = (&'static str, Box<dyn Fn(&mut LoadOptions)>);

/// Runs the loading sweep: the naive configuration, then each fix
/// applied cumulatively, ending at the tuned configuration.
pub fn run(scale: u32) -> LoadingFigure {
    let shape = DbShape::Db2;
    let steps: Vec<Step> = vec![
        (
            "naive: log on, 100/commit, 4MB caches, rescan join, index after",
            Box::new(|_: &mut LoadOptions| {}),
        ),
        (
            "+ stop re-running the wiring join",
            Box::new(|o: &mut LoadOptions| {
                o.join_rescan_on_commit = false;
            }),
        ),
        (
            "+ commit every 10,000 objects",
            Box::new(|o: &mut LoadOptions| {
                o.commit_every = 10_000;
            }),
        ),
        (
            "+ transaction-off mode (no log)",
            Box::new(|o: &mut LoadOptions| {
                o.transaction_off = true;
            }),
        ),
        (
            "+ 32MB client cache",
            Box::new(|o: &mut LoadOptions| {
                o.cache = CacheConfig::paper_default();
            }),
        ),
        (
            "+ index headroom at creation (tuned)",
            Box::new(|o: &mut LoadOptions| {
                o.index_timing = IndexTiming::HeadroomAtCreate;
            }),
        ),
    ];
    let mut options = LoadOptions::naive(shape, scale);
    let mut rows = Vec::new();
    for (label, apply) in steps {
        apply(&mut options);
        let report = load_experiment(&options);
        eprintln!(
            "  {label:<55} {:>10.1}s  ({} writes, {} log, {} reloc)",
            report.elapsed_secs, report.pages_written, report.log_pages_written, report.relocated
        );
        rows.push(Row {
            label,
            options: options.clone(),
            report,
        });
    }
    LoadingFigure { rows, scale }
}

/// Prints the sweep.
pub fn print(fig: &LoadingFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Section 3.2: loading the 1:3 database — from twelve hours to one"
    )
    .unwrap();
    writeln!(
        out,
        "  (scale 1/{}, {} objects)",
        fig.scale, fig.rows[0].report.objects
    )
    .unwrap();
    writeln!(
        out,
        "  configuration                                            elapsed      writes    log-writes   widened   relocated"
    )
    .unwrap();
    for r in &fig.rows {
        writeln!(
            out,
            "  {:<55} {:>9.1}s  {:>9}  {:>10}  {:>8}  {:>9}",
            r.label,
            r.report.elapsed_secs,
            r.report.pages_written,
            r.report.log_pages_written,
            r.report.widened,
            r.report.relocated,
        )
        .unwrap();
    }
    let naive = fig.rows.first().unwrap().report.elapsed_secs;
    let tuned = fig.rows.last().unwrap().report.elapsed_secs;
    writeln!(
        out,
        "  speedup: {:.1}x (the paper went from 12 hours to ~1)",
        naive / tuned
    )
    .unwrap();
    out
}
