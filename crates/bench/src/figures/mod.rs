//! One module per regenerated table/figure.

pub mod assoc;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig15;
pub mod handles;
pub mod hybrid;
pub mod joins;
pub mod loading;
pub mod multiway;
pub mod warm;
