//! Extension: hybrid hashing — the paper's named-but-untested fix.
//!
//! Re-runs the swap-bound cells of Figures 12 and 14 with
//! `JoinOptions::hybrid_hashing` and shows that partitioning removes
//! the paging collapse: the 90/90 inversion where "NOJOIN ... becomes
//! comparable to the hash join algorithms only when these require too
//! much memory" disappears once the hash joins stop requiring too much
//! memory.

use crate::harness::{build_db, run_join_cell};
use crate::parallel::run_cells;
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{DbShape, Organization};

/// One cell, measured three ways.
#[derive(Clone, Debug)]
pub struct Row {
    /// Shape/organization/selectivity identification.
    pub label: String,
    /// Algorithm measured.
    pub algo: JoinAlgo,
    /// Plain (paper) variant: seconds, swap faults.
    pub plain: (f64, u64),
    /// Hybrid variant: seconds, partitions, spill pages.
    pub hybrid: (f64, u32, u64),
    /// The navigation baseline that used to win the cell (best of
    /// NL/NOJOIN), for context.
    pub best_navigation_secs: f64,
}

/// The regenerated extension experiment.
pub struct HybridFigure {
    /// One row per swap-bound cell.
    pub rows: Vec<Row>,
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs the experiment on the paper's swap-bound cells, one worker
/// job per cell.
pub fn run(scale: u32, jobs: usize) -> HybridFigure {
    let cells: [(DbShape, Organization, u32, u32, JoinAlgo); 3] = [
        // Figure 12 (90,90): PHJ and CHJ both swap; NOJOIN wins.
        (
            DbShape::Db2,
            Organization::ClassClustered,
            90,
            90,
            JoinAlgo::Phj,
        ),
        (
            DbShape::Db2,
            Organization::ClassClustered,
            90,
            90,
            JoinAlgo::Chj,
        ),
        // Figure 14 (10,90): PHJ swaps; NOJOIN wins.
        (
            DbShape::Db2,
            Organization::Composition,
            10,
            90,
            JoinAlgo::Phj,
        ),
    ];
    // One master per distinct (shape, org), built up front in cell
    // order (each job clones the master it needs).
    let mut masters: Vec<((DbShape, Organization), tq_workload::Database)> = Vec::new();
    for (shape, org, ..) in cells {
        if !masters.iter().any(|(k, _)| *k == (shape, org)) {
            masters.push(((shape, org), build_db(shape, org, scale)));
        }
    }
    let cell_jobs: Vec<_> = cells
        .into_iter()
        .map(|(shape, org, pat, prov, algo)| {
            let master = &masters
                .iter()
                .find(|(k, _)| *k == (shape, org))
                .expect("master built above")
                .1;
            move || {
                let mut db = master.clone();
                let plain = run_join_cell(&mut db, algo, pat, prov, &JoinOptions::default());
                let hybrid_opts = JoinOptions {
                    hybrid_hashing: true,
                    ..JoinOptions::default()
                };
                let hybrid = run_join_cell(&mut db, algo, pat, prov, &hybrid_opts);
                assert_eq!(
                    plain.results, hybrid.results,
                    "hybrid must not change answers"
                );
                let nl = run_join_cell(&mut db, JoinAlgo::Nl, pat, prov, &JoinOptions::default());
                let nojoin = run_join_cell(
                    &mut db,
                    JoinAlgo::Nojoin,
                    pat,
                    prov,
                    &JoinOptions::default(),
                );
                Row {
                    label: format!("{} / {} ({pat},{prov})", shape.label(), org.label()),
                    algo,
                    plain: (plain.secs, plain.report.swap_faults),
                    hybrid: (
                        hybrid.secs,
                        hybrid.report.partitions,
                        hybrid.report.spill_pages,
                    ),
                    best_navigation_secs: nl.secs.min(nojoin.secs),
                }
            }
        })
        .collect();
    let rows = run_cells(cell_jobs, jobs);
    for r in &rows {
        eprintln!(
            "  {:?} plain {:.1}s ({} faults) -> hybrid {:.1}s ({} parts, {} spill pages)",
            r.algo, r.plain.0, r.plain.1, r.hybrid.0, r.hybrid.1, r.hybrid.2
        );
    }
    HybridFigure { rows, scale }
}

/// Prints the comparison.
pub fn print(fig: &HybridFigure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Extension: hybrid hashing on the paper's swap-bound cells (scale 1/{})",
        fig.scale.max(1)
    )
    .unwrap();
    writeln!(
        out,
        "  cell                                            algo   plain(s)  faults    hybrid(s)  parts  spill-pages  best-nav(s)"
    )
    .unwrap();
    for r in &fig.rows {
        writeln!(
            out,
            "  {:<46} {:<5} {:>9.1}  {:>7}  {:>9.1}  {:>5}  {:>11}  {:>10.1}",
            r.label,
            r.algo.label(),
            r.plain.0,
            r.plain.1,
            r.hybrid.0,
            r.hybrid.1,
            r.hybrid.2,
            r.best_navigation_secs,
        )
        .unwrap();
    }
    let all_beat_nav = fig.rows.iter().all(|r| r.hybrid.0 < r.best_navigation_secs);
    writeln!(
        out,
        "  with hybrid hashing the hash joins {} navigation in these cells — \
         the paper's conjecture, confirmed",
        if all_beat_nav {
            "reclaim every cell from"
        } else {
            "close most of the gap to"
        }
    )
    .unwrap();
    out
}
