//! Shared machinery for the figure-regeneration binaries.

use tq_query::estimator::PhysicalProfile;
use tq_query::join::{run_join, JoinContext, JoinOptions, JoinReport};
use tq_query::{ExecTrace, JoinAlgo, OpCounters, OpKind, ResultMode, TreeJoinSpec};
use tq_statsdb::{ExtentDesc, OperatorStat, QueryDesc, Stat, SystemDesc};
use tq_workload::{
    build, patient_attr, provider_attr, BuildConfig, Database, DbShape, Organization,
};

/// Reads the scale divisor from `TQ_SCALE` (default 1 = paper scale).
///
/// A set-but-unparseable value is a hard error: silently falling back
/// to paper scale would launch a multi-minute run the user did not
/// ask for. The error is returned (not exited on) so library callers
/// and tests stay testable; the figure binaries report it and exit 2.
pub fn scale_from_env() -> Result<u32, String> {
    positive_from_env("TQ_SCALE", 1, "the figure scale divisor")
}

/// Reads the worker count from `TQ_JOBS`.
///
/// Defaults to the machine's available parallelism; `1` runs every
/// cell inline on the main thread (the exact pre-parallel behaviour).
/// Cells are deterministic either way — any value produces
/// byte-identical figures.
pub fn jobs_from_env() -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1);
    positive_from_env("TQ_JOBS", default, "the figure worker count").map(|n| n as usize)
}

/// Shared parser: a positive integer from `var`, or `default` when
/// unset.
fn positive_from_env(var: &str, default: u32, what: &str) -> Result<u32, String> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => match raw.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "{var} ({what}) must be a positive integer, got {raw:?}"
            )),
        },
    }
}

/// Builds the database for a figure, honouring `TQ_SCALE`.
pub fn build_db(shape: DbShape, org: Organization, scale: u32) -> Database {
    let cfg = if scale <= 1 {
        BuildConfig::paper(shape, org)
    } else {
        BuildConfig::scaled(shape, org, scale)
    };
    eprintln!(
        "building {:?} / {:?} at scale 1/{} ({} providers)...",
        shape,
        org,
        scale.max(1),
        cfg.provider_count()
    );
    build(&cfg)
}

/// The paper's §5 join at the given selectivities.
pub fn join_spec(db: &Database, pat_pct: u32, prov_pct: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov_pct),
        child_key_limit: db.patient_selectivity_key(pat_pct),
        result_mode: ResultMode::Transient,
    }
}

/// The estimator's view of a database.
pub fn physical_profile(db: &Database) -> PhysicalProfile {
    let disk = db.store.stack().disk();
    let (parent_pages, child_pages) = match db.config.organization {
        Organization::ClassClustered | Organization::AssociationOrdered => {
            let p = disk.file_len(disk.file_by_name("providers").expect("providers file"));
            let c = disk.file_len(disk.file_by_name("patients").expect("patients file"));
            (p as u64, c as u64)
        }
        _ => {
            let shared = disk.file_len(disk.file_by_name("objects").expect("objects file")) as u64;
            (shared, shared)
        }
    };
    let overflow_pages_per_parent = match db.config.shape {
        DbShape::Db1 => {
            let ovf = disk
                .file_by_name("clients.overflow")
                .map(|f| disk.file_len(f) as f64)
                .unwrap_or(0.0);
            ovf / db.provider_count as f64
        }
        DbShape::Db2 => 0.0,
    };
    PhysicalProfile {
        parents_total: db.provider_count,
        children_total: db.patient_count,
        parent_scan_pages: parent_pages,
        child_scan_pages: child_pages,
        parent_index_clustered: db.idx_provider_upin.clustered,
        child_index_clustered: db.idx_patient_mrn.clustered,
        composition: db.config.organization == Organization::Composition,
        mean_fanout: db.patient_count as f64 / db.provider_count as f64,
        overflow_pages_per_parent,
        client_cache_pages: db.config.cache.client_pages as u64,
    }
}

/// One measured join run.
#[derive(Clone, Debug)]
pub struct JoinCell {
    /// The algorithm.
    pub algo: JoinAlgo,
    /// Simulated elapsed seconds (cold run).
    pub secs: f64,
    /// Result tuples.
    pub results: u64,
    /// Executor report.
    pub report: JoinReport,
    /// I/O counters for the run.
    pub io: tq_pagestore::IoStats,
}

/// Runs one cold join measurement (the paper's protocol: server
/// shutdown before every run).
pub fn run_join_cell(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
) -> JoinCell {
    let spec = join_spec(db, pat_pct, prov_pct);
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    // The cold protocol, spelled out (rather than `measure_cold`) so
    // the end-of-query handle drain can be recorded on the trace: with
    // the `Teardown` row the per-operator counters cover the *whole*
    // measured window and sum exactly to the query-level `Stat`.
    db.store.cold_restart();
    db.store.reset_metrics();
    let mut report = {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &spec, opts, false)
    };
    record_teardown(db, &mut report.trace);
    JoinCell {
        algo,
        secs: db.store.clock().elapsed_secs(),
        results: report.results,
        io: db.store.stats(),
        report,
    }
}

/// Runs `end_of_query` and credits its counter delta to a `Teardown`
/// root row of the trace (skipped when the drain charges nothing).
fn record_teardown(db: &mut Database, trace: &mut ExecTrace) {
    let before = OpCounters::snapshot(&db.store);
    db.store.end_of_query();
    let drain = OpCounters::snapshot(&db.store).delta_since(&before);
    if !drain.is_zero() {
        trace.push_root(OpKind::Teardown, "end_of_query", drain);
    }
}

/// Flattens a trace into storable [`OperatorStat`] rows.
pub fn operator_rows(trace: &ExecTrace) -> Vec<OperatorStat> {
    trace
        .ops
        .iter()
        .map(|op| OperatorStat {
            op: op.kind.label().into(),
            label: op.label.clone(),
            depth: op.depth,
            d2sc_read_pages: op.counters.io.d2sc_read_pages,
            sc2cc_read_pages: op.counters.io.sc2cc_read_pages,
            client_misses: op.counters.io.client_misses,
            handle_gets: op.counters.handle_gets(),
            handle_frees: op.counters.handle_frees,
            cpu_events: op.counters.cpu_events,
            io_nanos: op.counters.io_nanos,
            rpc_nanos: op.counters.rpc_nanos,
            cpu_nanos: op.counters.cpu_nanos,
            swap_nanos: op.counters.swap_nanos,
        })
        .collect()
}

/// Runs a *warm* join measurement: one cold run primes the caches
/// (discarded), then the same join is measured again without a server
/// restart. The paper measured everything cold; warm runs show how
/// much of each algorithm's cost the caches can absorb (I/O) and how
/// much they cannot (handle CPU — the §4 lesson).
pub fn run_join_cell_warm(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
) -> JoinCell {
    let spec = join_spec(db, pat_pct, prov_pct);
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    // Prime.
    let _ = run_join_cell(db, algo, pat_pct, prov_pct, opts);
    // Measure warm: reset metrics only, keep residency.
    db.store.reset_metrics();
    let mut report = {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &spec, opts, false)
    };
    record_teardown(db, &mut report.trace);
    JoinCell {
        algo,
        secs: db.store.clock().elapsed_secs(),
        results: report.results,
        io: db.store.stats(),
        report,
    }
}

/// Converts a measured cell into a Figure 3 `Stat` record.
pub fn stat_record(db: &Database, cell: &JoinCell, pat_pct: u32, prov_pct: u32) -> Stat {
    let spec = join_spec(db, pat_pct, prov_pct);
    Stat {
        numtest: 0, // assigned by the StatsDb
        query: QueryDesc {
            cold: true,
            projection_type: "[p.name, pa.age]".into(),
            selectivities: vec![("Patient".into(), pat_pct), ("Provider".into(), prov_pct)],
            text: format!(
                "select [p.name, pa.age] from p in Providers, pa in p.clients \
                 where pa.mrn < {} and p.upin < {}",
                spec.child_key_limit, spec.parent_key_limit
            ),
        },
        database: vec![
            ExtentDesc {
                classname: "Provider".into(),
                size: db.provider_count,
                associations: vec![("Patient".into(), db.config.shape.mean_fanout())],
            },
            ExtentDesc {
                classname: "Patient".into(),
                size: db.patient_count,
                associations: vec![],
            },
        ],
        cluster: db.config.organization.label().into(),
        algo: cell.algo.label().into(),
        system: SystemDesc {
            server_cache_kb: (db.config.cache.server_pages * 4) as u64,
            client_cache_kb: (db.config.cache.client_pages * 4) as u64,
            same_workstation: true,
        },
        cc_pagefaults: cell.io.client_misses,
        elapsed_time: cell.secs,
        rpcs_number: cell.io.sc2cc_read_pages,
        rpcs_total_mb: cell.io.rpc_total_bytes() as f64 / 1e6,
        d2sc_read_pages: cell.io.d2sc_read_pages,
        sc2cc_read_pages: cell.io.sc2cc_read_pages,
        cc_miss_rate: cell.io.client_miss_rate(),
        sc_miss_rate: cell.io.server_miss_rate(),
        operators: operator_rows(&cell.report.trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_reflects_the_database() {
        let db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
        let p = physical_profile(&db);
        assert_eq!(p.parents_total, 1000);
        assert!(p.parent_index_clustered);
        assert!(p.child_index_clustered);
        assert!(!p.composition);
        assert!(p.parent_scan_pages > 0 && p.child_scan_pages > 0);
        let comp = build_db(DbShape::Db2, Organization::Composition, 1000);
        let pc = physical_profile(&comp);
        assert!(pc.composition);
        assert!(!pc.child_index_clustered);
        assert_eq!(pc.parent_scan_pages, pc.child_scan_pages);
    }

    #[test]
    fn cells_convert_to_stat_records() {
        let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
        let cell = run_join_cell(&mut db, JoinAlgo::Phj, 10, 90, &Default::default());
        assert!(cell.results > 0);
        assert!(cell.secs > 0.0);
        let stat = stat_record(&db, &cell, 10, 90);
        assert_eq!(stat.algo, "PHJ");
        assert_eq!(stat.cluster, "class");
        assert_eq!(stat.query.selectivity_on("Patient"), Some(10));
        assert!(stat.query.text.contains("select"));
        assert!(stat.d2sc_read_pages > 0);
    }

    #[test]
    fn db1_profile_has_overflow_pages() {
        let db = build_db(DbShape::Db1, Organization::ClassClustered, 200);
        let p = physical_profile(&db);
        assert!(
            p.overflow_pages_per_parent > 1.0,
            "1:1000 client sets overflow ({} pages/parent)",
            p.overflow_pages_per_parent
        );
    }
}
