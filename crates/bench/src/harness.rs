//! Shared machinery for the figure-regeneration binaries.
//!
//! The measurement protocol itself (cold runs, teardown attribution,
//! `Stat` conversion) lives in [`tq_server::measure`] so the query
//! service and the figure harness execute queries through one code
//! path; this module re-exports it under the old names and keeps the
//! genuinely harness-side pieces: database construction and the
//! estimator profile. Environment parsing lives in [`crate::env`].

use tq_query::estimator::PhysicalProfile;
use tq_workload::{build, BuildConfig, Database, DbShape, Organization};

pub use crate::env::{jobs_from_env, scale_from_env};
pub use tq_server::measure::{
    join_spec, measure_current, measure_current_parallel, operator_rows, run_join_cell,
    run_join_cell_parallel, run_join_cell_warm, run_join_cell_with, stat_record, JoinCell,
};

/// Builds the database for a figure, honouring `TQ_SCALE`.
pub fn build_db(shape: DbShape, org: Organization, scale: u32) -> Database {
    let cfg = if scale <= 1 {
        BuildConfig::paper(shape, org)
    } else {
        BuildConfig::scaled(shape, org, scale)
    };
    eprintln!(
        "building {:?} / {:?} at scale 1/{} ({} providers)...",
        shape,
        org,
        scale.max(1),
        cfg.provider_count()
    );
    build(&cfg)
}

/// The estimator's view of a database.
pub fn physical_profile(db: &Database) -> PhysicalProfile {
    let disk = db.store.stack().disk();
    let (parent_pages, child_pages) = match db.config.organization {
        Organization::ClassClustered | Organization::AssociationOrdered => {
            let p = disk.file_len(disk.file_by_name("providers").expect("providers file"));
            let c = disk.file_len(disk.file_by_name("patients").expect("patients file"));
            (p as u64, c as u64)
        }
        _ => {
            let shared = disk.file_len(disk.file_by_name("objects").expect("objects file")) as u64;
            (shared, shared)
        }
    };
    let overflow_pages_per_parent = match db.config.shape {
        DbShape::Db1 => {
            let ovf = disk
                .file_by_name("clients.overflow")
                .map(|f| disk.file_len(f) as f64)
                .unwrap_or(0.0);
            ovf / db.provider_count as f64
        }
        DbShape::Db2 => 0.0,
    };
    PhysicalProfile {
        parents_total: db.provider_count,
        children_total: db.patient_count,
        parent_scan_pages: parent_pages,
        child_scan_pages: child_pages,
        parent_index_clustered: db.idx_provider_upin.clustered,
        child_index_clustered: db.idx_patient_mrn.clustered,
        composition: db.config.organization == Organization::Composition,
        mean_fanout: db.patient_count as f64 / db.provider_count as f64,
        overflow_pages_per_parent,
        client_cache_pages: db.config.cache.client_pages as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_query::JoinAlgo;

    #[test]
    fn profile_reflects_the_database() {
        let db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
        let p = physical_profile(&db);
        assert_eq!(p.parents_total, 1000);
        assert!(p.parent_index_clustered);
        assert!(p.child_index_clustered);
        assert!(!p.composition);
        assert!(p.parent_scan_pages > 0 && p.child_scan_pages > 0);
        let comp = build_db(DbShape::Db2, Organization::Composition, 1000);
        let pc = physical_profile(&comp);
        assert!(pc.composition);
        assert!(!pc.child_index_clustered);
        assert_eq!(pc.parent_scan_pages, pc.child_scan_pages);
    }

    #[test]
    fn cells_convert_to_stat_records() {
        let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
        let cell = run_join_cell(&mut db, JoinAlgo::Phj, 10, 90, &Default::default());
        assert!(cell.results > 0);
        assert!(cell.secs > 0.0);
        let stat = stat_record(&db, &cell, 10, 90);
        assert_eq!(stat.algo, "PHJ");
        assert_eq!(stat.cluster, "class");
        assert_eq!(stat.query.selectivity_on("Patient"), Some(10));
        assert!(stat.query.text.contains("select"));
        assert!(stat.d2sc_read_pages > 0);
    }

    #[test]
    fn db1_profile_has_overflow_pages() {
        let db = build_db(DbShape::Db1, Organization::ClassClustered, 200);
        let p = physical_profile(&db);
        assert!(
            p.overflow_pages_per_parent > 1.0,
            "1:1000 client sets overflow ({} pages/parent)",
            p.overflow_pages_per_parent
        );
    }
}
