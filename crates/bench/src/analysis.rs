//! Eliciting a cost model from benchmark runs — the paper's original
//! goal, achieved.
//!
//! §2: "Our hope was that, with the help of an expert in data analysis
//! (Yves Lechevallier at INRIA), we could elicit a cost model from the
//! results (in a manner similar to what Fedorowicz proposes)." The
//! authors never got enough runs. The simulator can produce as many as
//! we like, so this module does the experiment: run a sweep, regress
//! elapsed time on the observable per-run counters, and compare the
//! fitted coefficients with the true `CostModel` constants.
//!
//! The regression is ordinary least squares via the normal equations
//! (the feature count is tiny), solved with Gaussian elimination.

use crate::harness::{build_db, run_join_cell, JoinCell};
use tq_pagestore::CostModel;
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{DbShape, Organization};

/// One observation: feature vector plus observed elapsed seconds.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Feature values (see [`FEATURES`]).
    pub x: Vec<f64>,
    /// Elapsed simulated seconds.
    pub y: f64,
}

/// Feature names, in order.
///
/// Cold runs make disk reads and RPCs perfectly collinear (every cold
/// miss is one of each), so they appear as a single "page" feature
/// whose fitted coefficient absorbs read + ship time.
pub const FEATURES: [&str; 4] = [
    "pages read+shipped",
    "objects fetched",
    "result tuples",
    "swap faults",
];

/// Extracts the feature vector from a measured join cell.
pub fn features_of(cell: &JoinCell) -> Observation {
    Observation {
        x: vec![
            cell.io.d2sc_read_pages as f64,
            (cell.report.parents_scanned + cell.report.children_scanned) as f64,
            cell.results as f64,
            cell.report.swap_faults as f64,
        ],
        y: cell.secs,
    }
}

/// Ordinary least squares without an intercept: minimizes
/// `||X·beta - y||²`. Returns `None` when the normal matrix is
/// singular (degenerate design).
pub fn ols(observations: &[Observation]) -> Option<Vec<f64>> {
    let k = observations.first()?.x.len();
    // Normal equations: (XᵀX) beta = Xᵀy.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for obs in observations {
        assert_eq!(obs.x.len(), k, "ragged observation");
        for i in 0..k {
            b[i] += obs.x[i] * obs.y;
            for (aij, xj) in a[i].iter_mut().zip(&obs.x) {
                *aij += obs.x[i] * xj;
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k).max_by(|&p, &q| a[p][col].abs().total_cmp(&a[q][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..k {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (rj, pj) in lower[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *rj -= f * pj;
            }
            b[row] -= f * b[col];
        }
    }
    let mut beta = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = b[row];
        for j in row + 1..k {
            acc -= a[row][j] * beta[j];
        }
        beta[row] = acc / a[row][row];
    }
    Some(beta)
}

/// Coefficient of determination for a fit.
pub fn r_squared(observations: &[Observation], beta: &[f64]) -> f64 {
    let mean = observations.iter().map(|o| o.y).sum::<f64>() / observations.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for obs in observations {
        let pred: f64 = obs.x.iter().zip(beta).map(|(x, b)| x * b).sum();
        ss_res += (obs.y - pred) * (obs.y - pred);
        ss_tot += (obs.y - mean) * (obs.y - mean);
    }
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// The fitted model plus the truth to compare against.
pub struct CostModelFit {
    /// Fitted seconds-per-unit for each of [`FEATURES`].
    pub beta: Vec<f64>,
    /// R² of the fit.
    pub r2: f64,
    /// Observations used.
    pub observations: usize,
    /// Scale divisor used.
    pub scale: u32,
}

/// Runs the sweep (3 organizations × 4 cells × 4 algorithms) and fits.
pub fn run(scale: u32) -> CostModelFit {
    let mut observations = Vec::new();
    for org in Organization::all() {
        let mut db = build_db(DbShape::Db2, org, scale);
        for (pat, prov) in [(10u32, 10u32), (10, 90), (90, 10), (90, 90)] {
            for algo in JoinAlgo::all() {
                let cell = run_join_cell(&mut db, algo, pat, prov, &JoinOptions::default());
                observations.push(features_of(&cell));
            }
        }
    }
    // Features that never occurred in the sweep (e.g. swap faults at
    // scales where no table outgrows the budget) are unidentifiable:
    // prune them, fit the rest, and report 0 for the pruned ones.
    let k = FEATURES.len();
    let active: Vec<usize> = (0..k)
        .filter(|&i| observations.iter().any(|o| o.x[i].abs() > 1e-9))
        .collect();
    let pruned: Vec<Observation> = observations
        .iter()
        .map(|o| Observation {
            x: active.iter().map(|&i| o.x[i]).collect(),
            y: o.y,
        })
        .collect();
    let fitted = ols(&pruned).expect("active features span a full-rank design");
    let mut beta = vec![0.0f64; k];
    for (slot, &i) in active.iter().enumerate() {
        beta[i] = fitted[slot];
    }
    let r2 = r_squared(&observations, &beta);
    CostModelFit {
        beta,
        r2,
        observations: observations.len(),
        scale,
    }
}

/// Prints the fitted coefficients against the true constants.
pub fn print(fit: &CostModelFit) -> String {
    use std::fmt::Write;
    let m = CostModel::sparc20();
    let truth_ms: [(f64, &str); 4] = [
        (
            (m.read_page_random + m.rpc_per_page) as f64 / 1e6,
            "8.5-10.5 ms/page (read + rpc, seq-random mix)",
        ),
        (
            (m.handle_alloc + m.handle_unref + m.handle_free) as f64 / 1e6 + 0.12,
            "~0.25 ms/object (handle cycle + attribute gets)",
        ),
        (
            (m.result_append_transient + 2 * m.attr_get) as f64 / 1e6,
            "0.17 ms/tuple (append + projections)",
        ),
        (m.swap_fault as f64 / 1e6, "20 ms/fault"),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "Eliciting the cost model from {} runs by least squares (scale 1/{}):",
        fit.observations, fit.scale
    )
    .unwrap();
    writeln!(
        out,
        "  feature               fitted (ms/unit)   true constant"
    )
    .unwrap();
    for ((name, beta), (_, truth)) in FEATURES.iter().zip(&fit.beta).zip(truth_ms) {
        writeln!(out, "  {:<20} {:>15.3}    {}", name, beta * 1e3, truth).unwrap();
    }
    writeln!(out, "  R² = {:.4}", fit.r2).unwrap();
    writeln!(
        out,
        "  — the regression the authors hoped Lechevallier's data analysis would\n    \
         give them: with enough (deterministic) runs, the constants fall out."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: Vec<f64>, y: f64) -> Observation {
        Observation { x, y }
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        // y = 2 x0 + 0.5 x1, no noise.
        let data: Vec<Observation> = (0..20)
            .map(|i| {
                let x0 = (i % 7) as f64 + 1.0;
                let x1 = (i % 5) as f64 * 3.0 + 2.0;
                obs(vec![x0, x1], 2.0 * x0 + 0.5 * x1)
            })
            .collect();
        let beta = ols(&data).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9, "{beta:?}");
        assert!((beta[1] - 0.5).abs() < 1e-9, "{beta:?}");
        assert!((r_squared(&data, &beta) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ols_rejects_singular_designs() {
        // x1 is always 2 * x0: rank deficient.
        let data: Vec<Observation> = (1..10)
            .map(|i| obs(vec![i as f64, 2.0 * i as f64], 3.0 * i as f64))
            .collect();
        assert!(ols(&data).is_none());
    }

    #[test]
    fn ols_fits_noisy_data_approximately() {
        // y = 4 x0 + 1 x1 + deterministic "noise".
        let data: Vec<Observation> = (0..60)
            .map(|i| {
                let x0 = ((i * 13) % 17) as f64 + 1.0;
                let x1 = ((i * 7) % 11) as f64 + 1.0;
                let noise = ((i * 31) % 5) as f64 * 0.05 - 0.1;
                obs(vec![x0, x1], 4.0 * x0 + x1 + noise)
            })
            .collect();
        let beta = ols(&data).unwrap();
        assert!((beta[0] - 4.0).abs() < 0.05, "{beta:?}");
        assert!((beta[1] - 1.0).abs() < 0.1, "{beta:?}");
        assert!(r_squared(&data, &beta) > 0.999);
    }

    #[test]
    fn sweep_fit_recovers_the_simulators_constants() {
        let fit = run(500);
        assert!(fit.r2 > 0.95, "R² = {}", fit.r2);
        // Disk page cost lands near 8-10 ms.
        let page_ms = fit.beta[0] * 1e3;
        assert!(
            (5.0..14.0).contains(&page_ms),
            "fitted page cost {page_ms:.2} ms"
        );
        // Per-object (handle) cost lands near 0.25 ms.
        let obj_ms = fit.beta[1] * 1e3;
        assert!(
            (0.1..0.5).contains(&obj_ms),
            "fitted object cost {obj_ms:.3} ms"
        );
    }
}
