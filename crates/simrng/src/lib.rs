//! # tq-simrng — vendored deterministic randomness
//!
//! The workload builder and the randomized test suites need a seeded,
//! portable PRNG. The build environment has no registry access, so
//! instead of an external crate this module vendors the two standard
//! public-domain algorithms:
//!
//! * [`SimRng`] — xoshiro256** (Blackman & Vigna), seeded through
//!   SplitMix64 exactly as its authors recommend;
//! * [`SimRng::shuffle`] — Fisher–Yates with bounded uniform draws by
//!   rejection sampling, so every permutation is equally likely and
//!   the stream is identical on every platform.
//!
//! Determinism contract: the same seed always produces the same
//! sequence, independent of architecture, build profile, or thread
//! count. The figure harness's byte-identical-output guarantee
//! (`TQ_JOBS`) rests on this.

/// A seeded xoshiro256** generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// One SplitMix64 step — used for seeding and usable on its own for
/// cheap hash-like mixing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next raw 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `0..n` (`n > 0`) by rejection sampling: unbiased
    /// and platform-independent.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject the tail of the 2^64 range that doesn't divide evenly.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform draw from an inclusive range, for any primitive integer
    /// type convertible through `i128` (the widest needed here).
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64; // fits: i64 span ≤ 2^64
        if span == 0 {
            // Full i64 domain.
            return self.next_u64() as i64;
        }
        (lo as i128 + self.below(span) as i128) as i64
    }

    /// Uniform `u32` in `lo..=hi`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_i64(lo as i64, hi as i64) as u32
    }

    /// Uniform `i32` in `lo..=hi`.
    #[inline]
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `usize` in `0..n`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform `bool`.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_xoshiro_vector() {
        // xoshiro256** with state seeded by SplitMix64(0) is a fixed
        // function; pin the first outputs so silent algorithm changes
        // (which would silently re-randomize every built database)
        // fail loudly.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = SimRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // SplitMix64(0) must produce the published sequence head.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_handles_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            assert_eq!(r.range_i64(3, 3), 3);
            let e = r.range_i64(i64::MIN, i64::MAX);
            let _ = e; // full-domain draw must not panic
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes all");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_uniform_draws_is_central() {
        let mut r = SimRng::seed_from_u64(17);
        let n = 10_000;
        let sum: u64 = (0..n).map(|_| r.below(100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((45.0..55.0).contains(&mean), "mean {mean} of U(0,99)");
    }
}
