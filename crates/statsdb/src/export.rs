//! Exporters: CSV and gnuplot data files.
//!
//! The paper's authors "built easily automatic translation tools to
//! create input files for data analysis softwares" (§3.3) and used YAT
//! to convert O2 data to Gnuplot. These are those tools.

use crate::model::Stat;
use std::fmt::Write as _;

/// Escapes one CSV field (quotes when needed).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders records as CSV with a header row. Selectivities are
/// flattened as `extent=pct` pairs joined by `;`.
pub fn to_csv<'a>(stats: impl IntoIterator<Item = &'a Stat>) -> String {
    let mut out = String::new();
    out.push_str(
        "numtest,algo,cluster,database,cold,projection,selectivities,query,\
         elapsed_s,cc_pagefaults,rpcs,rpcs_mb,d2sc_pages,sc2cc_pages,\
         cc_miss_pct,sc_miss_pct\n",
    );
    for s in stats {
        let sel = s
            .query
            .selectivities
            .iter()
            .map(|(e, p)| format!("{e}={p}"))
            .collect::<Vec<_>>()
            .join(";");
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.2},{},{},{:.2},{},{},{:.1},{:.1}",
            s.numtest,
            csv_field(&s.algo),
            csv_field(&s.cluster),
            csv_field(&s.database_label()),
            s.query.cold,
            csv_field(&s.query.projection_type),
            csv_field(&sel),
            csv_field(&s.query.text),
            s.elapsed_time,
            s.cc_pagefaults,
            s.rpcs_number,
            s.rpcs_total_mb,
            s.d2sc_read_pages,
            s.sc2cc_read_pages,
            s.cc_miss_rate,
            s.sc_miss_rate,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Renders a gnuplot `.dat` block per series: rows are
/// `x elapsed_seconds`, one indexed block per series (gnuplot
/// `index n`), series selected and ordered by `series_of`, x by `x_of`.
pub fn to_gnuplot<'a>(
    stats: impl IntoIterator<Item = &'a Stat>,
    series_of: impl Fn(&Stat) -> String,
    x_of: impl Fn(&Stat) -> f64,
) -> String {
    let mut by_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for s in stats {
        let key = series_of(s);
        let point = (x_of(s), s.elapsed_time);
        match by_series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(point),
            None => by_series.push((key, vec![point])),
        }
    }
    let mut out = String::new();
    for (key, mut points) in by_series {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        writeln!(out, "# series: {key}").unwrap();
        for (x, y) in points {
            writeln!(out, "{x} {y:.2}").unwrap();
        }
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::StatsDb;
    use crate::model::tests::sample_stat;

    #[test]
    fn csv_has_header_and_rows() {
        let mut db = StatsDb::new();
        db.insert(sample_stat(0, "PHJ", 89.83));
        db.insert(sample_stat(0, "NL", 1418.56));
        let csv = to_csv(db.all());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("numtest,algo"));
        assert!(lines[1].contains("PHJ"));
        assert!(lines[1].contains("89.83"));
        assert!(lines[2].contains("NL"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut s = sample_stat(1, "PHJ", 1.0);
        s.query.text = "select f(p,pa) \"quoted\"".into();
        let csv = to_csv([&s]);
        assert!(csv.contains("\"select f(p,pa) \"\"quoted\"\"\""));
    }

    #[test]
    fn gnuplot_groups_series_and_sorts_x() {
        let mut db = StatsDb::new();
        let mut a = sample_stat(0, "PHJ", 10.0);
        a.query.selectivities = vec![("Patient".into(), 90)];
        db.insert(a);
        let mut b = sample_stat(0, "PHJ", 5.0);
        b.query.selectivities = vec![("Patient".into(), 10)];
        db.insert(b);
        let mut c = sample_stat(0, "NL", 99.0);
        c.query.selectivities = vec![("Patient".into(), 10)];
        db.insert(c);
        let dat = to_gnuplot(
            db.all(),
            |s| s.algo.clone(),
            |s| s.query.selectivity_on("Patient").unwrap_or(0) as f64,
        );
        let phj = dat.split("# series: NL").next().unwrap();
        assert!(phj.contains("# series: PHJ"));
        // Points sorted by x within the PHJ block.
        let idx10 = phj.find("10 5.00").unwrap();
        let idx90 = phj.find("90 10.00").unwrap();
        assert!(idx10 < idx90);
        assert!(dat.contains("# series: NL"));
        assert!(dat.contains("10 99.00"));
    }
}
