//! Exporters: CSV and gnuplot data files.
//!
//! The paper's authors "built easily automatic translation tools to
//! create input files for data analysis softwares" (§3.3) and used YAT
//! to convert O2 data to Gnuplot. These are those tools.

use crate::model::{OperatorStat, Stat};
use std::fmt::Write as _;

/// Escapes one CSV field (quotes when needed).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders records as CSV with a header row. Selectivities are
/// flattened as `extent=pct` pairs joined by `;`.
pub fn to_csv<'a>(stats: impl IntoIterator<Item = &'a Stat>) -> String {
    let mut out = String::new();
    out.push_str(
        "numtest,algo,cluster,database,cold,projection,selectivities,query,\
         elapsed_s,cc_pagefaults,rpcs,rpcs_mb,d2sc_pages,sc2cc_pages,\
         cc_miss_pct,sc_miss_pct\n",
    );
    for s in stats {
        let sel = s
            .query
            .selectivities
            .iter()
            .map(|(e, p)| format!("{e}={p}"))
            .collect::<Vec<_>>()
            .join(";");
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.2},{},{},{:.2},{},{},{:.1},{:.1}",
            s.numtest,
            csv_field(&s.algo),
            csv_field(&s.cluster),
            csv_field(&s.database_label()),
            s.query.cold,
            csv_field(&s.query.projection_type),
            csv_field(&sel),
            csv_field(&s.query.text),
            s.elapsed_time,
            s.cc_pagefaults,
            s.rpcs_number,
            s.rpcs_total_mb,
            s.d2sc_read_pages,
            s.sc2cc_read_pages,
            s.cc_miss_rate,
            s.sc_miss_rate,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Header of the per-operator CSV, shared by writer and parser.
const OPERATOR_CSV_HEADER: &str = "numtest,algo,cluster,op,label,depth,d2sc_pages,\
     sc2cc_pages,cc_misses,handle_gets,handle_frees,cpu_events,io_ns,rpc_ns,cpu_ns,swap_ns";

/// Renders the per-operator breakdowns as their own CSV (one row per
/// operator, keyed back to the experiment by `numtest`). Time columns
/// are integer nanoseconds so the export round-trips exactly; records
/// without a traced breakdown contribute no rows.
pub fn to_operator_csv<'a>(stats: impl IntoIterator<Item = &'a Stat>) -> String {
    let mut out = String::new();
    out.push_str(OPERATOR_CSV_HEADER);
    out.push('\n');
    for s in stats {
        for op in &s.operators {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.numtest,
                csv_field(&s.algo),
                csv_field(&s.cluster),
                csv_field(&op.op),
                csv_field(&op.label),
                op.depth,
                op.d2sc_read_pages,
                op.sc2cc_read_pages,
                op.client_misses,
                op.handle_gets,
                op.handle_frees,
                op.cpu_events,
                op.io_nanos,
                op.rpc_nanos,
                op.cpu_nanos,
                op.swap_nanos,
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

/// Splits one CSV line into fields, undoing [`csv_field`] quoting.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses [`to_operator_csv`] output back into
/// `(numtest, algo, cluster, row)` tuples. Returns `None` on a header
/// mismatch or a malformed row — the translation tools are for our own
/// exports, not arbitrary CSV.
pub fn parse_operator_csv(csv: &str) -> Option<Vec<(u64, String, String, OperatorStat)>> {
    let mut lines = csv.lines();
    if lines.next()? != OPERATOR_CSV_HEADER {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let f = split_csv_line(line);
        if f.len() != 16 {
            return None;
        }
        let num = |i: usize| f[i].parse::<u64>().ok();
        rows.push((
            num(0)?,
            f[1].clone(),
            f[2].clone(),
            OperatorStat {
                op: f[3].clone(),
                label: f[4].clone(),
                depth: f[5].parse().ok()?,
                d2sc_read_pages: num(6)?,
                sc2cc_read_pages: num(7)?,
                client_misses: num(8)?,
                handle_gets: num(9)?,
                handle_frees: num(10)?,
                cpu_events: num(11)?,
                io_nanos: num(12)?,
                rpc_nanos: num(13)?,
                cpu_nanos: num(14)?,
                swap_nanos: num(15)?,
            },
        ));
    }
    Some(rows)
}

/// Renders a gnuplot `.dat` block per series: rows are
/// `x elapsed_seconds`, one indexed block per series (gnuplot
/// `index n`), series selected and ordered by `series_of`, x by `x_of`.
pub fn to_gnuplot<'a>(
    stats: impl IntoIterator<Item = &'a Stat>,
    series_of: impl Fn(&Stat) -> String,
    x_of: impl Fn(&Stat) -> f64,
) -> String {
    let mut by_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for s in stats {
        let key = series_of(s);
        let point = (x_of(s), s.elapsed_time);
        match by_series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(point),
            None => by_series.push((key, vec![point])),
        }
    }
    let mut out = String::new();
    for (key, mut points) in by_series {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        writeln!(out, "# series: {key}").unwrap();
        for (x, y) in points {
            writeln!(out, "{x} {y:.2}").unwrap();
        }
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::StatsDb;
    use crate::model::tests::sample_stat;

    #[test]
    fn csv_has_header_and_rows() {
        let mut db = StatsDb::new();
        db.insert(sample_stat(0, "PHJ", 89.83));
        db.insert(sample_stat(0, "NL", 1418.56));
        let csv = to_csv(db.all());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("numtest,algo"));
        assert!(lines[1].contains("PHJ"));
        assert!(lines[1].contains("89.83"));
        assert!(lines[2].contains("NL"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut s = sample_stat(1, "PHJ", 1.0);
        s.query.text = "select f(p,pa) \"quoted\"".into();
        let csv = to_csv([&s]);
        assert!(csv.contains("\"select f(p,pa) \"\"quoted\"\"\""));
    }

    #[test]
    fn operator_csv_round_trips_exactly() {
        let mut db = StatsDb::new();
        db.insert(sample_stat(0, "PHJ", 89.83));
        let mut bare = sample_stat(0, "NL", 1.0);
        bare.operators.clear(); // untraced runs contribute no rows
        db.insert(bare);
        let csv = to_operator_csv(db.all());
        let rows = parse_operator_csv(&csv).expect("own export must parse");
        let original: Vec<_> = db
            .all()
            .iter()
            .flat_map(|s| {
                s.operators
                    .iter()
                    .map(|op| (s.numtest, s.algo.clone(), s.cluster.clone(), op.clone()))
            })
            .collect();
        assert_eq!(rows, original);
        assert_eq!(rows.len(), 2, "only the traced record exports rows");
        assert!(parse_operator_csv("bogus\n1,2,3").is_none());
    }

    #[test]
    fn operator_csv_escapes_and_reparses_quoted_labels() {
        let mut s = sample_stat(3, "PHJ", 1.0);
        s.operators[0].label = "weird,\"label\"".into();
        let csv = to_operator_csv([&s]);
        let rows = parse_operator_csv(&csv).unwrap();
        assert_eq!(rows[0].3.label, "weird,\"label\"");
    }

    #[test]
    fn gnuplot_groups_series_and_sorts_x() {
        let mut db = StatsDb::new();
        let mut a = sample_stat(0, "PHJ", 10.0);
        a.query.selectivities = vec![("Patient".into(), 90)];
        db.insert(a);
        let mut b = sample_stat(0, "PHJ", 5.0);
        b.query.selectivities = vec![("Patient".into(), 10)];
        db.insert(b);
        let mut c = sample_stat(0, "NL", 99.0);
        c.query.selectivities = vec![("Patient".into(), 10)];
        db.insert(c);
        let dat = to_gnuplot(
            db.all(),
            |s| s.algo.clone(),
            |s| s.query.selectivity_on("Patient").unwrap_or(0) as f64,
        );
        let phj = dat.split("# series: NL").next().unwrap();
        assert!(phj.contains("# series: PHJ"));
        // Points sorted by x within the PHJ block.
        let idx10 = phj.find("10 5.00").unwrap();
        let idx90 = phj.find("90 10.00").unwrap();
        assert!(idx10 < idx90);
        assert!(dat.contains("# series: NL"));
        assert!(dat.contains("10 99.00"));
    }
}
