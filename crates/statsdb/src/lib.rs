//! # tq-statsdb — a database for benchmark results
//!
//! The paper's §3.3 hard-won advice: *"Large Benchmark Equals Many
//! Numbers: Why Not Use a Database?"* — after months of grepping loose
//! result files, the authors stored every experiment as an object of
//! the Figure 3 schema and queried it back. This crate is that schema,
//! reproduced: [`Stat`] / [`QueryDesc`] / [`ExtentDesc`] / [`SystemDesc`]
//! records, an in-process [`StatsDb`] with a predicate/filter query
//! API, and the "automatic translation tools" the authors built —
//! CSV and gnuplot exporters ([`export`]).
//!
//! Every figure-regeneration binary in `tq-bench` inserts its runs here
//! and *queries them back* to print its table, exactly as the authors
//! worked.

pub mod db;
pub mod export;
pub mod latency;
pub mod merge;
pub mod model;

pub use db::{Filter, GroupSummary, StatsDb};
pub use export::{parse_operator_csv, to_operator_csv};
pub use latency::{parse_latency_csv, to_latency_csv, LatencyStat, LogHistogram};
pub use merge::merge_stats;
pub use model::{ExtentDesc, OperatorStat, QueryDesc, Stat, SystemDesc};
