//! Latency accounting for the serving experiment: a log-scaled
//! histogram and the summary record the load generator exports.
//!
//! The histogram is HDR-style: values (nanoseconds) land in buckets
//! that are linear within an octave and geometric across octaves —
//! [`SUB_BUCKETS`] sub-buckets per power of two, so any recorded value
//! is off by at most `1/SUB_BUCKETS` of itself (~3%) while the whole
//! `u64` range fits in a couple of thousand counters. Percentiles come
//! from bucket midpoints; min/max/mean are tracked exactly.
//!
//! [`LatencyStat`] deliberately stores only integers (nanoseconds and
//! counts), so its CSV export round-trips *exactly* — the same
//! discipline the per-operator CSV uses (`export.rs`).

use std::fmt::Write as _;

/// Sub-buckets per octave (power of two). 32 gives ≤3.2% relative
/// error per recorded value.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Log-scaled histogram of nanosecond values.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift as u64 * SUB_BUCKETS) + (v >> shift)) as usize
}

/// Midpoint of a bucket's value range (its representative value).
fn bucket_mid(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        // Octaves 0..=SUB_BITS: buckets are single values / width 1.
        return index;
    }
    let shift = index / SUB_BUCKETS - 1;
    let s = index - shift * SUB_BUCKETS;
    let low = s << shift;
    low + (1u64 << shift) / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_of(nanos)] += 1;
        self.total += 1;
        self.sum += nanos as u128;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Value at quantile `q`: the midpoint of the bucket holding the
    /// `ceil(q·count)`-th smallest recording, clamped to the exact
    /// observed min/max. The boundaries are exact, not bucket
    /// approximations: `q ≤ 0` is the recorded minimum and `q ≥ 1` the
    /// recorded maximum (out-of-range `q` clamps rather than panics;
    /// NaN falls through to the minimum). 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q.is_nan() || q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram in (per-thread histograms merge into
    /// one report).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One serving run's summary: configuration, outcome counts, and the
/// latency distribution of successful queries. All fields are integers
/// so the CSV export round-trips exactly; derived rates are methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// What ran (e.g. `"CHJ pat=10 prov=90 cold"`).
    pub label: String,
    /// Closed-loop client threads.
    pub concurrency: u32,
    /// Server worker threads.
    pub workers: u32,
    /// Admission-queue depth.
    pub queue_depth: u32,
    /// Wall-clock duration of the run, nanoseconds.
    pub duration_nanos: u64,
    /// Queries answered `QueryOk`.
    pub queries_ok: u64,
    /// Queries shed by admission control — all targets combined.
    pub queries_shed: u64,
    /// Of [`LatencyStat::queries_shed`], the queries shed at the
    /// scatter-gather *router's* admission edge rather than by an
    /// engine shard. Always 0 for unsharded runs; the shard-level
    /// count is `queries_shed - shed_router`.
    pub shed_router: u64,
    /// Queries cancelled by their deadline.
    pub deadline_exceeded: u64,
    /// Queries answered with a protocol/server error.
    pub errors: u64,
    /// Write transactions committed (mixed-workload runs; 0 otherwise).
    pub commits: u64,
    /// Write transactions aborted by commit validation.
    pub aborts: u64,
    /// Fastest successful query, nanoseconds.
    pub min_nanos: u64,
    /// Mean successful-query latency, nanoseconds.
    pub mean_nanos: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Slowest successful query, nanoseconds.
    pub max_nanos: u64,
}

impl LatencyStat {
    /// Builds the summary from a run's histogram and outcome counts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_histogram(
        label: impl Into<String>,
        concurrency: u32,
        workers: u32,
        queue_depth: u32,
        duration_nanos: u64,
        hist: &LogHistogram,
        queries_shed: u64,
        shed_router: u64,
        deadline_exceeded: u64,
        errors: u64,
        commits: u64,
        aborts: u64,
    ) -> Self {
        Self {
            label: label.into(),
            concurrency,
            workers,
            queue_depth,
            duration_nanos,
            queries_ok: hist.count(),
            queries_shed,
            shed_router,
            deadline_exceeded,
            errors,
            commits,
            aborts,
            min_nanos: hist.min(),
            mean_nanos: hist.mean(),
            p50_nanos: hist.quantile(0.50),
            p95_nanos: hist.quantile(0.95),
            p99_nanos: hist.quantile(0.99),
            max_nanos: hist.max(),
        }
    }

    /// Completed queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        if self.duration_nanos == 0 {
            return 0.0;
        }
        self.queries_ok as f64 / (self.duration_nanos as f64 / 1e9)
    }

    /// Fraction of arrivals shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.queries_ok + self.queries_shed + self.deadline_exceeded + self.errors;
        if arrivals == 0 {
            return 0.0;
        }
        self.queries_shed as f64 / arrivals as f64
    }

    /// Fraction of write transactions that lost commit validation
    /// (aborts / attempts). 0.0 for read-only runs.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            return 0.0;
        }
        self.aborts as f64 / attempts as f64
    }

    /// Queries shed by an engine shard's admission edge (the total
    /// minus the router-edge sheds).
    pub fn shed_shard(&self) -> u64 {
        self.queries_shed - self.shed_router
    }

    /// Folds another run's summary into this one — the aggregation
    /// that combines per-shard (or per-instance) serving summaries
    /// into a single fleet-level row. All-integer, so the merged
    /// record still round-trips the CSV exactly.
    ///
    /// Semantics, field by field:
    /// * outcome counters (`ok`, `shed`, `shed_router`, deadline,
    ///   errors, commits, aborts) and the client/worker totals
    ///   (`concurrency`, `workers`) sum exactly;
    /// * `queue_depth` keeps the per-instance maximum — it bounds one
    ///   admission queue, it is not an additive resource;
    /// * `duration_nanos` keeps the maximum: merged instances ran
    ///   concurrently, so wall clock is the slowest part's;
    /// * `min`/`max` latencies merge exactly;
    /// * `mean_nanos` is the count-weighted integer mean (computed in
    ///   u128; each fold loses at most the sub-nanosecond division
    ///   remainder, so a chain of k folds is within k ns of the mean
    ///   over all samples);
    /// * percentiles take the **maximum** of the parts: the union's
    ///   true q-quantile can never exceed the largest per-part
    ///   q-quantile (each part already has ⌈q·nᵢ⌉ samples at or below
    ///   its own quantile), so up to the histogram's bucket
    ///   resolution (≤3.2% per value) this is a conservative upper
    ///   bound — the right direction to err for latency SLOs.
    pub fn merge(&mut self, other: &LatencyStat) {
        let (n_self, n_other) = (self.queries_ok, other.queries_ok);
        let n = n_self + n_other;
        if n > 0 {
            let weighted = self.mean_nanos as u128 * n_self as u128
                + other.mean_nanos as u128 * n_other as u128;
            self.mean_nanos = (weighted / n as u128) as u64;
        }
        if n_other > 0 {
            self.min_nanos = if n_self == 0 {
                other.min_nanos
            } else {
                self.min_nanos.min(other.min_nanos)
            };
            self.max_nanos = self.max_nanos.max(other.max_nanos);
            self.p50_nanos = self.p50_nanos.max(other.p50_nanos);
            self.p95_nanos = self.p95_nanos.max(other.p95_nanos);
            self.p99_nanos = self.p99_nanos.max(other.p99_nanos);
        }
        self.concurrency += other.concurrency;
        self.workers += other.workers;
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.duration_nanos = self.duration_nanos.max(other.duration_nanos);
        self.queries_ok = n;
        self.queries_shed += other.queries_shed;
        self.shed_router += other.shed_router;
        self.deadline_exceeded += other.deadline_exceeded;
        self.errors += other.errors;
        self.commits += other.commits;
        self.aborts += other.aborts;
    }
}

/// Header of the latency CSV, shared by writer and parser.
const LATENCY_CSV_HEADER: &str = "label,concurrency,workers,queue_depth,duration_ns,\
     ok,shed,shed_router,deadline_exceeded,errors,commits,aborts,\
     min_ns,mean_ns,p50_ns,p95_ns,p99_ns,max_ns";

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders latency summaries as CSV (integer nanoseconds throughout,
/// so [`parse_latency_csv`] recovers them exactly).
pub fn to_latency_csv<'a>(stats: impl IntoIterator<Item = &'a LatencyStat>) -> String {
    let mut out = String::new();
    out.push_str(LATENCY_CSV_HEADER);
    out.push('\n');
    for s in stats {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&s.label),
            s.concurrency,
            s.workers,
            s.queue_depth,
            s.duration_nanos,
            s.queries_ok,
            s.queries_shed,
            s.shed_router,
            s.deadline_exceeded,
            s.errors,
            s.commits,
            s.aborts,
            s.min_nanos,
            s.mean_nanos,
            s.p50_nanos,
            s.p95_nanos,
            s.p99_nanos,
            s.max_nanos,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses [`to_latency_csv`] output back. Returns `None` on a header
/// mismatch or malformed row — our own exports only, like the
/// operator-CSV parser.
pub fn parse_latency_csv(csv: &str) -> Option<Vec<LatencyStat>> {
    let mut lines = csv.lines();
    if lines.next()? != LATENCY_CSV_HEADER {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let f = split_csv_line(line);
        if f.len() != 18 {
            return None;
        }
        let num = |i: usize| f[i].parse::<u64>().ok();
        rows.push(LatencyStat {
            label: f[0].clone(),
            concurrency: f[1].parse().ok()?,
            workers: f[2].parse().ok()?,
            queue_depth: f[3].parse().ok()?,
            duration_nanos: num(4)?,
            queries_ok: num(5)?,
            queries_shed: num(6)?,
            shed_router: num(7)?,
            deadline_exceeded: num(8)?,
            errors: num(9)?,
            commits: num(10)?,
            aborts: num(11)?,
            min_nanos: num(12)?,
            mean_nanos: num(13)?,
            p50_nanos: num(14)?,
            p95_nanos: num(15)?,
            p99_nanos: num(16)?,
            max_nanos: num(17)?,
        });
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 1, u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(b >= prev || v < 4096, "non-monotone at {v}");
            if v < 4096 {
                prev = prev.max(b);
            }
        }
        // Exact buckets below SUB_BUCKETS.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_mid(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_track_recorded_values_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 10_000_000);
        for (q, expect) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.04, "q{q}: got {got}, want ~{expect} (err {err:.3})");
        }
        // Mean is exact.
        assert_eq!(h.mean(), 5_000_500);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
        // Boundary quantiles of an empty histogram are 0 too — not
        // u64::MAX leaking out of the untouched `min` field.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn boundary_quantiles_are_exact_extremes() {
        // Regression: q=0 used to return the first occupied bucket's
        // midpoint (above the true minimum once values outgrow the
        // exact sub-bucket range) and q=1 the last bucket's clamped
        // midpoint. Both must be the *recorded* extremes, exactly.
        let mut h = LogHistogram::new();
        for v in [1_000_003u64, 5_500_017, 9_999_991] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1_000_003);
        assert_eq!(h.quantile(1.0), 9_999_991);
        // Out-of-range q clamps instead of panicking or indexing wild.
        assert_eq!(h.quantile(-3.5), 1_000_003);
        assert_eq!(h.quantile(7.0), 9_999_991);
        assert_eq!(h.quantile(f64::NAN), 1_000_003);
        // Interior quantiles still sit within the recorded range.
        let q50 = h.quantile(0.5);
        assert!((1_000_003..=9_999_991).contains(&q50));
        // A single-value histogram answers that value at every q.
        let mut one = LogHistogram::new();
        one.record(123_456_789);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 123_456_789, "q={q}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 77, 1_000_000, 123_456_789] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 500, 2_000_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.mean(), both.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn latency_csv_round_trips_exactly() {
        let mut h = LogHistogram::new();
        for v in [10_000u64, 20_000, 40_000, 80_000, 160_000] {
            h.record(v);
        }
        let stats = vec![
            LatencyStat::from_histogram(
                "CHJ pat=10, prov=90",
                8,
                4,
                16,
                2_000_000_000,
                &h,
                3,
                1,
                1,
                0,
                12,
                4,
            ),
            LatencyStat::default(),
        ];
        let csv = to_latency_csv(&stats);
        let parsed = parse_latency_csv(&csv).expect("own export must parse");
        assert_eq!(parsed, stats);
        // The quoted-comma label survived.
        assert_eq!(parsed[0].label, "CHJ pat=10, prov=90");
        // Derived rates behave.
        assert!(parsed[0].throughput_qps() > 0.0);
        assert!((parsed[0].shed_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert!((parsed[0].abort_rate() - 4.0 / 16.0).abs() < 1e-12);
        assert_eq!(parsed[1].abort_rate(), 0.0, "read-only runs report 0");
    }

    #[test]
    fn foreign_csv_is_rejected() {
        assert!(parse_latency_csv("nope\n1,2,3").is_none());
        let mut csv = String::from(LATENCY_CSV_HEADER);
        csv.push_str("\nonly,three,fields\n");
        assert!(parse_latency_csv(&csv).is_none());
        // A pre-shed_router 17-field row is foreign now.
        let mut old = String::from(LATENCY_CSV_HEADER);
        old.push_str("\nx,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1\n");
        assert!(parse_latency_csv(&old).is_none());
    }

    fn stat_of(label: &str, values: &[u64], shed: u64, shed_router: u64) -> LatencyStat {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        LatencyStat::from_histogram(
            label,
            4,
            2,
            8,
            1_000_000_000,
            &h,
            shed,
            shed_router,
            2,
            1,
            5,
            3,
        )
    }

    #[test]
    fn merge_sums_counts_and_bounds_percentiles() {
        let mut a = stat_of("a", &[1_000, 2_000, 4_000], 3, 1);
        let b = stat_of("b", &[8_000, 16_000], 2, 2);
        a.merge(&b);
        assert_eq!(a.queries_ok, 5);
        assert_eq!(a.queries_shed, 5);
        assert_eq!(a.shed_router, 3);
        assert_eq!(a.shed_shard(), 2);
        assert_eq!(a.deadline_exceeded, 4);
        assert_eq!(a.errors, 2);
        assert_eq!(a.commits, 10);
        assert_eq!(a.aborts, 6);
        assert_eq!(a.concurrency, 8);
        assert_eq!(a.workers, 4);
        assert_eq!(a.queue_depth, 8);
        assert_eq!(a.duration_nanos, 1_000_000_000);
        assert_eq!(a.min_nanos, 1_000);
        assert_eq!(a.max_nanos, 16_000);
        // Weighted mean: (2333*3 + 12000*2) / 5.
        assert_eq!(a.mean_nanos, (2333 * 3 + 12000 * 2) / 5);
        // Merged stat still round-trips the CSV exactly.
        let csv = to_latency_csv([&a]);
        assert_eq!(parse_latency_csv(&csv).unwrap(), vec![a]);
    }

    #[test]
    fn merge_with_empty_keeps_latencies() {
        let mut empty = stat_of("e", &[], 0, 0);
        let a = stat_of("a", &[5_000, 9_000], 1, 0);
        empty.merge(&a);
        assert_eq!(empty.min_nanos, a.min_nanos);
        assert_eq!(empty.max_nanos, a.max_nanos);
        assert_eq!(empty.mean_nanos, a.mean_nanos);
        assert_eq!(empty.p99_nanos, a.p99_nanos);
        let mut b = stat_of("b", &[5_000, 9_000], 1, 0);
        b.merge(&stat_of("e", &[], 0, 0));
        assert_eq!(b.p50_nanos, a.p50_nanos);
        assert_eq!(b.min_nanos, a.min_nanos);
    }

    #[test]
    fn merge_tracks_combined_recording_within_bounds() {
        // Property: merging per-part summaries tracks the summary of
        // the combined recording — counts/min/max exactly, the mean
        // within one ns per fold (integer rounding), percentiles
        // bounded by [combined percentile, combined max].
        let mut rng = tq_simrng::SimRng::seed_from_u64(0x5EED_1A7E);
        for _ in 0..40 {
            let parts = 2 + rng.index(4);
            let mut combined = LogHistogram::new();
            let mut merged: Option<LatencyStat> = None;
            let mut totals = (0u64, 0u64); // (shed, shed_router)
            for _ in 0..parts {
                let n = rng.index(200);
                let mut h = LogHistogram::new();
                for _ in 0..n {
                    let v = 1 + (rng.next_u64() % 10_000_000);
                    h.record(v);
                    combined.record(v);
                }
                let shed_router = rng.index(5) as u64;
                let shed = shed_router + rng.index(5) as u64;
                totals.0 += shed;
                totals.1 += shed_router;
                let s = LatencyStat::from_histogram(
                    "part",
                    1,
                    1,
                    8,
                    1_000,
                    &h,
                    shed,
                    shed_router,
                    0,
                    0,
                    0,
                    0,
                );
                match merged.as_mut() {
                    Some(m) => m.merge(&s),
                    None => merged = Some(s),
                }
            }
            let m = merged.unwrap();
            assert_eq!(m.queries_ok, combined.count());
            assert_eq!(m.min_nanos, combined.min());
            assert_eq!(m.max_nanos, combined.max());
            assert_eq!(m.queries_shed, totals.0);
            assert_eq!(m.shed_router, totals.1);
            assert!(m.mean_nanos.abs_diff(combined.mean()) <= parts as u64);
            for (q, got) in [
                (0.50, m.p50_nanos),
                (0.95, m.p95_nanos),
                (0.99, m.p99_nanos),
            ] {
                // Lower bound holds up to bucket resolution (two
                // sub-buckets of slack); the upper bound is exact.
                let lo = combined.quantile(q) as f64 * (1.0 - 2.0 / SUB_BUCKETS as f64);
                assert!(got as f64 >= lo, "q{q} below combined quantile");
                assert!(got <= combined.max(), "q{q} above combined max");
            }
            // All-integer: the merged row survives the CSV exactly.
            let csv = to_latency_csv([&m]);
            assert_eq!(parse_latency_csv(&csv).unwrap(), vec![m]);
        }
    }
}
