//! Latency accounting for the serving experiment: a log-scaled
//! histogram and the summary record the load generator exports.
//!
//! The histogram is HDR-style: values (nanoseconds) land in buckets
//! that are linear within an octave and geometric across octaves —
//! [`SUB_BUCKETS`] sub-buckets per power of two, so any recorded value
//! is off by at most `1/SUB_BUCKETS` of itself (~3%) while the whole
//! `u64` range fits in a couple of thousand counters. Percentiles come
//! from bucket midpoints; min/max/mean are tracked exactly.
//!
//! [`LatencyStat`] deliberately stores only integers (nanoseconds and
//! counts), so its CSV export round-trips *exactly* — the same
//! discipline the per-operator CSV uses (`export.rs`).

use std::fmt::Write as _;

/// Sub-buckets per octave (power of two). 32 gives ≤3.2% relative
/// error per recorded value.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Log-scaled histogram of nanosecond values.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift as u64 * SUB_BUCKETS) + (v >> shift)) as usize
}

/// Midpoint of a bucket's value range (its representative value).
fn bucket_mid(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        // Octaves 0..=SUB_BITS: buckets are single values / width 1.
        return index;
    }
    let shift = index / SUB_BUCKETS - 1;
    let s = index - shift * SUB_BUCKETS;
    let low = s << shift;
    low + (1u64 << shift) / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_of(nanos)] += 1;
        self.total += 1;
        self.sum += nanos as u128;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Value at quantile `q`: the midpoint of the bucket holding the
    /// `ceil(q·count)`-th smallest recording, clamped to the exact
    /// observed min/max. The boundaries are exact, not bucket
    /// approximations: `q ≤ 0` is the recorded minimum and `q ≥ 1` the
    /// recorded maximum (out-of-range `q` clamps rather than panics;
    /// NaN falls through to the minimum). 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q.is_nan() || q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram in (per-thread histograms merge into
    /// one report).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One serving run's summary: configuration, outcome counts, and the
/// latency distribution of successful queries. All fields are integers
/// so the CSV export round-trips exactly; derived rates are methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// What ran (e.g. `"CHJ pat=10 prov=90 cold"`).
    pub label: String,
    /// Closed-loop client threads.
    pub concurrency: u32,
    /// Server worker threads.
    pub workers: u32,
    /// Admission-queue depth.
    pub queue_depth: u32,
    /// Wall-clock duration of the run, nanoseconds.
    pub duration_nanos: u64,
    /// Queries answered `QueryOk`.
    pub queries_ok: u64,
    /// Queries shed by admission control.
    pub queries_shed: u64,
    /// Queries cancelled by their deadline.
    pub deadline_exceeded: u64,
    /// Queries answered with a protocol/server error.
    pub errors: u64,
    /// Write transactions committed (mixed-workload runs; 0 otherwise).
    pub commits: u64,
    /// Write transactions aborted by commit validation.
    pub aborts: u64,
    /// Fastest successful query, nanoseconds.
    pub min_nanos: u64,
    /// Mean successful-query latency, nanoseconds.
    pub mean_nanos: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Slowest successful query, nanoseconds.
    pub max_nanos: u64,
}

impl LatencyStat {
    /// Builds the summary from a run's histogram and outcome counts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_histogram(
        label: impl Into<String>,
        concurrency: u32,
        workers: u32,
        queue_depth: u32,
        duration_nanos: u64,
        hist: &LogHistogram,
        queries_shed: u64,
        deadline_exceeded: u64,
        errors: u64,
        commits: u64,
        aborts: u64,
    ) -> Self {
        Self {
            label: label.into(),
            concurrency,
            workers,
            queue_depth,
            duration_nanos,
            queries_ok: hist.count(),
            queries_shed,
            deadline_exceeded,
            errors,
            commits,
            aborts,
            min_nanos: hist.min(),
            mean_nanos: hist.mean(),
            p50_nanos: hist.quantile(0.50),
            p95_nanos: hist.quantile(0.95),
            p99_nanos: hist.quantile(0.99),
            max_nanos: hist.max(),
        }
    }

    /// Completed queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        if self.duration_nanos == 0 {
            return 0.0;
        }
        self.queries_ok as f64 / (self.duration_nanos as f64 / 1e9)
    }

    /// Fraction of arrivals shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.queries_ok + self.queries_shed + self.deadline_exceeded + self.errors;
        if arrivals == 0 {
            return 0.0;
        }
        self.queries_shed as f64 / arrivals as f64
    }

    /// Fraction of write transactions that lost commit validation
    /// (aborts / attempts). 0.0 for read-only runs.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            return 0.0;
        }
        self.aborts as f64 / attempts as f64
    }
}

/// Header of the latency CSV, shared by writer and parser.
const LATENCY_CSV_HEADER: &str = "label,concurrency,workers,queue_depth,duration_ns,\
     ok,shed,deadline_exceeded,errors,commits,aborts,\
     min_ns,mean_ns,p50_ns,p95_ns,p99_ns,max_ns";

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders latency summaries as CSV (integer nanoseconds throughout,
/// so [`parse_latency_csv`] recovers them exactly).
pub fn to_latency_csv<'a>(stats: impl IntoIterator<Item = &'a LatencyStat>) -> String {
    let mut out = String::new();
    out.push_str(LATENCY_CSV_HEADER);
    out.push('\n');
    for s in stats {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&s.label),
            s.concurrency,
            s.workers,
            s.queue_depth,
            s.duration_nanos,
            s.queries_ok,
            s.queries_shed,
            s.deadline_exceeded,
            s.errors,
            s.commits,
            s.aborts,
            s.min_nanos,
            s.mean_nanos,
            s.p50_nanos,
            s.p95_nanos,
            s.p99_nanos,
            s.max_nanos,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parses [`to_latency_csv`] output back. Returns `None` on a header
/// mismatch or malformed row — our own exports only, like the
/// operator-CSV parser.
pub fn parse_latency_csv(csv: &str) -> Option<Vec<LatencyStat>> {
    let mut lines = csv.lines();
    if lines.next()? != LATENCY_CSV_HEADER {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let f = split_csv_line(line);
        if f.len() != 17 {
            return None;
        }
        let num = |i: usize| f[i].parse::<u64>().ok();
        rows.push(LatencyStat {
            label: f[0].clone(),
            concurrency: f[1].parse().ok()?,
            workers: f[2].parse().ok()?,
            queue_depth: f[3].parse().ok()?,
            duration_nanos: num(4)?,
            queries_ok: num(5)?,
            queries_shed: num(6)?,
            deadline_exceeded: num(7)?,
            errors: num(8)?,
            commits: num(9)?,
            aborts: num(10)?,
            min_nanos: num(11)?,
            mean_nanos: num(12)?,
            p50_nanos: num(13)?,
            p95_nanos: num(14)?,
            p99_nanos: num(15)?,
            max_nanos: num(16)?,
        });
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 1, u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(b >= prev || v < 4096, "non-monotone at {v}");
            if v < 4096 {
                prev = prev.max(b);
            }
        }
        // Exact buckets below SUB_BUCKETS.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_mid(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_track_recorded_values_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 10_000_000);
        for (q, expect) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.04, "q{q}: got {got}, want ~{expect} (err {err:.3})");
        }
        // Mean is exact.
        assert_eq!(h.mean(), 5_000_500);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.99), 0);
        // Boundary quantiles of an empty histogram are 0 too — not
        // u64::MAX leaking out of the untouched `min` field.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn boundary_quantiles_are_exact_extremes() {
        // Regression: q=0 used to return the first occupied bucket's
        // midpoint (above the true minimum once values outgrow the
        // exact sub-bucket range) and q=1 the last bucket's clamped
        // midpoint. Both must be the *recorded* extremes, exactly.
        let mut h = LogHistogram::new();
        for v in [1_000_003u64, 5_500_017, 9_999_991] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1_000_003);
        assert_eq!(h.quantile(1.0), 9_999_991);
        // Out-of-range q clamps instead of panicking or indexing wild.
        assert_eq!(h.quantile(-3.5), 1_000_003);
        assert_eq!(h.quantile(7.0), 9_999_991);
        assert_eq!(h.quantile(f64::NAN), 1_000_003);
        // Interior quantiles still sit within the recorded range.
        let q50 = h.quantile(0.5);
        assert!((1_000_003..=9_999_991).contains(&q50));
        // A single-value histogram answers that value at every q.
        let mut one = LogHistogram::new();
        one.record(123_456_789);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 123_456_789, "q={q}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 77, 1_000_000, 123_456_789] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 500, 2_000_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.mean(), both.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn latency_csv_round_trips_exactly() {
        let mut h = LogHistogram::new();
        for v in [10_000u64, 20_000, 40_000, 80_000, 160_000] {
            h.record(v);
        }
        let stats = vec![
            LatencyStat::from_histogram(
                "CHJ pat=10, prov=90",
                8,
                4,
                16,
                2_000_000_000,
                &h,
                3,
                1,
                0,
                12,
                4,
            ),
            LatencyStat::default(),
        ];
        let csv = to_latency_csv(&stats);
        let parsed = parse_latency_csv(&csv).expect("own export must parse");
        assert_eq!(parsed, stats);
        // The quoted-comma label survived.
        assert_eq!(parsed[0].label, "CHJ pat=10, prov=90");
        // Derived rates behave.
        assert!(parsed[0].throughput_qps() > 0.0);
        assert!((parsed[0].shed_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert!((parsed[0].abort_rate() - 4.0 / 16.0).abs() < 1e-12);
        assert_eq!(parsed[1].abort_rate(), 0.0, "read-only runs report 0");
    }

    #[test]
    fn foreign_csv_is_rejected() {
        assert!(parse_latency_csv("nope\n1,2,3").is_none());
        let mut csv = String::from(LATENCY_CSV_HEADER);
        csv.push_str("\nonly,three,fields\n");
        assert!(parse_latency_csv(&csv).is_none());
    }
}
