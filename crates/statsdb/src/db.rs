//! The in-process results database.

use crate::model::Stat;

/// Structured filter over [`Stat`] records. All set fields must match
/// (conjunction); unset fields match anything.
#[derive(Clone, Debug, Default)]
pub struct Filter {
    /// Algorithm name, exact.
    pub algo: Option<String>,
    /// Clustering strategy, exact.
    pub cluster: Option<String>,
    /// Substring of the query text.
    pub query_contains: Option<String>,
    /// Cold-run flag.
    pub cold: Option<bool>,
    /// Required `(extent, selectivity%)` pairs.
    pub selectivities: Vec<(String, u32)>,
    /// Required `(provider extent size, link ratio)`.
    pub database: Option<(u64, u32)>,
}

impl Filter {
    /// Matches everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to an algorithm.
    pub fn algo(mut self, algo: &str) -> Self {
        self.algo = Some(algo.to_string());
        self
    }

    /// Restricts to a clustering strategy.
    pub fn cluster(mut self, cluster: &str) -> Self {
        self.cluster = Some(cluster.to_string());
        self
    }

    /// Restricts to queries whose text contains `needle`.
    pub fn query_contains(mut self, needle: &str) -> Self {
        self.query_contains = Some(needle.to_string());
        self
    }

    /// Restricts to cold (or warm) runs.
    pub fn cold(mut self, cold: bool) -> Self {
        self.cold = Some(cold);
        self
    }

    /// Requires a selectivity on an extent.
    pub fn selectivity(mut self, extent: &str, percent: u32) -> Self {
        self.selectivities.push((extent.to_string(), percent));
        self
    }

    /// Requires the database shape `(parent extent size, link ratio)`.
    pub fn database(mut self, parent_size: u64, link_ratio: u32) -> Self {
        self.database = Some((parent_size, link_ratio));
        self
    }

    /// Does `stat` satisfy this filter?
    pub fn matches(&self, stat: &Stat) -> bool {
        if let Some(a) = &self.algo {
            if &stat.algo != a {
                return false;
            }
        }
        if let Some(c) = &self.cluster {
            if &stat.cluster != c {
                return false;
            }
        }
        if let Some(q) = &self.query_contains {
            if !stat.query.text.contains(q.as_str()) {
                return false;
            }
        }
        if let Some(cold) = self.cold {
            if stat.query.cold != cold {
                return false;
            }
        }
        for (extent, pct) in &self.selectivities {
            if stat.query.selectivity_on(extent) != Some(*pct) {
                return false;
            }
        }
        if let Some((size, ratio)) = self.database {
            let found = stat
                .database
                .iter()
                .any(|e| e.size == size && e.associations.iter().any(|&(_, r)| r == ratio));
            if !found {
                return false;
            }
        }
        true
    }
}

/// The benchmark-results database.
#[derive(Clone, Debug, Default)]
pub struct StatsDb {
    stats: Vec<Stat>,
}

impl StatsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record, assigning and returning its `numtest`.
    pub fn insert(&mut self, mut stat: Stat) -> u64 {
        let numtest = self.stats.len() as u64 + 1;
        stat.numtest = numtest;
        self.stats.push(stat);
        numtest
    }

    /// Number of stored experiments.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when no experiments are stored.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// All records, in insertion order.
    pub fn all(&self) -> &[Stat] {
        &self.stats
    }

    /// Records matching `filter`, in insertion order.
    pub fn select(&self, filter: &Filter) -> Vec<&Stat> {
        self.stats.iter().filter(|s| filter.matches(s)).collect()
    }

    /// Records matching an arbitrary predicate.
    pub fn select_where(&self, pred: impl Fn(&Stat) -> bool) -> Vec<&Stat> {
        self.stats.iter().filter(|s| pred(s)).collect()
    }

    /// Records matching `filter`, sorted by ascending elapsed time —
    /// the ranking the paper's Figures 11–14 print.
    pub fn ranking(&self, filter: &Filter) -> Vec<&Stat> {
        let mut rows = self.select(filter);
        rows.sort_by(|a, b| a.elapsed_time.total_cmp(&b.elapsed_time));
        rows
    }

    /// The fastest matching record (the Figure 15 "winning algorithm").
    pub fn winner(&self, filter: &Filter) -> Option<&Stat> {
        self.ranking(filter).into_iter().next()
    }

    /// Groups matching records by `key` and summarizes elapsed time per
    /// group — the "data analysis" the authors fed Gnuplot with.
    /// Groups come back sorted by key.
    pub fn summarize(&self, filter: &Filter, key: impl Fn(&Stat) -> String) -> Vec<GroupSummary> {
        let mut groups: Vec<GroupSummary> = Vec::new();
        for stat in self.select(filter) {
            let k = key(stat);
            let entry = match groups.iter_mut().find(|g| g.key == k) {
                Some(g) => g,
                None => {
                    groups.push(GroupSummary {
                        key: k,
                        runs: 0,
                        mean_secs: 0.0,
                        min_secs: f64::INFINITY,
                        max_secs: f64::NEG_INFINITY,
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            entry.runs += 1;
            entry.mean_secs += stat.elapsed_time;
            entry.min_secs = entry.min_secs.min(stat.elapsed_time);
            entry.max_secs = entry.max_secs.max(stat.elapsed_time);
        }
        for g in &mut groups {
            g.mean_secs /= g.runs as f64;
        }
        groups.sort_by(|a, b| a.key.cmp(&b.key));
        groups
    }
}

/// Per-group elapsed-time summary from [`StatsDb::summarize`].
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSummary {
    /// Group key.
    pub key: String,
    /// Records in the group.
    pub runs: u64,
    /// Mean elapsed seconds.
    pub mean_secs: f64,
    /// Fastest run.
    pub min_secs: f64,
    /// Slowest run.
    pub max_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_stat;

    fn db() -> StatsDb {
        let mut db = StatsDb::new();
        db.insert(sample_stat(0, "PHJ", 89.83));
        db.insert(sample_stat(0, "CHJ", 101.05));
        db.insert(sample_stat(0, "NOJOIN", 125.90));
        db.insert(sample_stat(0, "NL", 1418.56));
        db
    }

    #[test]
    fn insert_assigns_numtest() {
        let db = db();
        assert_eq!(db.len(), 4);
        assert_eq!(db.all()[0].numtest, 1);
        assert_eq!(db.all()[3].numtest, 4);
    }

    #[test]
    fn filter_by_algo_and_cluster() {
        let db = db();
        assert_eq!(db.select(&Filter::any().algo("PHJ")).len(), 1);
        assert_eq!(db.select(&Filter::any().cluster("class")).len(), 4);
        assert_eq!(db.select(&Filter::any().cluster("composition")).len(), 0);
        assert_eq!(
            db.select(&Filter::any().algo("CHJ").cluster("class")).len(),
            1
        );
    }

    #[test]
    fn filter_by_selectivity_and_database() {
        let db = db();
        let f = Filter::any()
            .selectivity("Patient", 10)
            .selectivity("Provider", 90);
        assert_eq!(db.select(&f).len(), 4);
        let f = Filter::any().selectivity("Patient", 30);
        assert_eq!(db.select(&f).len(), 0);
        assert_eq!(db.select(&Filter::any().database(2000, 1000)).len(), 4);
        assert_eq!(db.select(&Filter::any().database(2000, 3)).len(), 0);
    }

    #[test]
    fn ranking_and_winner_follow_elapsed_time() {
        let db = db();
        let ranked = db.ranking(&Filter::any());
        let algos: Vec<&str> = ranked.iter().map(|s| s.algo.as_str()).collect();
        assert_eq!(algos, vec!["PHJ", "CHJ", "NOJOIN", "NL"]);
        assert_eq!(db.winner(&Filter::any()).unwrap().algo, "PHJ");
        assert!(db.winner(&Filter::any().algo("X")).is_none());
    }

    #[test]
    fn cold_and_text_filters() {
        let db = db();
        assert_eq!(db.select(&Filter::any().cold(true)).len(), 4);
        assert_eq!(db.select(&Filter::any().cold(false)).len(), 0);
        assert_eq!(db.select(&Filter::any().query_contains("select")).len(), 4);
        assert_eq!(db.select(&Filter::any().query_contains("drop")).len(), 0);
    }

    #[test]
    fn summarize_groups_and_aggregates() {
        let mut db = db();
        db.insert(sample_stat(0, "PHJ", 110.17)); // second PHJ run
        let groups = db.summarize(&Filter::any(), |s| s.algo.clone());
        assert_eq!(groups.len(), 4);
        let phj = groups.iter().find(|g| g.key == "PHJ").unwrap();
        assert_eq!(phj.runs, 2);
        assert!((phj.mean_secs - 100.0).abs() < 1e-9);
        assert!((phj.min_secs - 89.83).abs() < 1e-9);
        assert!((phj.max_secs - 110.17).abs() < 1e-9);
        // Keys are sorted.
        let keys: Vec<&str> = groups.iter().map(|g| g.key.as_str()).collect();
        assert_eq!(keys, vec!["CHJ", "NL", "NOJOIN", "PHJ"]);
        // An empty filter result gives no groups.
        assert!(db
            .summarize(&Filter::any().algo("X"), |s| s.algo.clone())
            .is_empty());
    }

    #[test]
    fn select_where_closure() {
        let db = db();
        let slow = db.select_where(|s| s.elapsed_time > 1000.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].algo, "NL");
    }
}
