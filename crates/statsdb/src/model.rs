//! The Figure 3 result schema, as Rust records.
//!
//! Field names follow the paper's `class Stat` / `class Query` /
//! `class Extent` / `class System` (§3.3, Figure 3) with Rust casing.
//! One deliberate deviation: the paper's `Query.selectivity` is a
//! single integer; our join experiments select on *two* extents, so
//! [`QueryDesc::selectivities`] is a list of `(extent, percent)` pairs
//! (the paper's own Figures 11–14 are keyed that way).

/// Describes one extent of the database an experiment ran against
/// (paper `class Extent`).
#[derive(Clone, Debug, PartialEq)]
pub struct ExtentDesc {
    /// The extent is on this class.
    pub classname: String,
    /// Cardinality of the extent.
    pub size: u64,
    /// Associations to other extents: `(extent classname, link ratio)`
    /// — e.g. `("Patient", 1000)` for the 1:1000 database.
    pub associations: Vec<(String, u32)>,
}

/// Describes the query an experiment ran (paper `class Query`).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryDesc {
    /// Was the query evaluated after a server shutdown?
    pub cold: bool,
    /// Projection type (e.g. `"[p.name, pa.age]"`).
    pub projection_type: String,
    /// Selectivity on each queried extent, in percent.
    pub selectivities: Vec<(String, u32)>,
    /// The text of the query.
    pub text: String,
}

impl QueryDesc {
    /// Selectivity on a given extent, if recorded.
    pub fn selectivity_on(&self, extent: &str) -> Option<u32> {
        self.selectivities
            .iter()
            .find(|(e, _)| e == extent)
            .map(|&(_, s)| s)
    }
}

/// Describes the system configuration (paper `class System`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemDesc {
    /// Server cache size in KB.
    pub server_cache_kb: u64,
    /// Client cache size in KB.
    pub client_cache_kb: u64,
    /// Do the client and the server run on the same device?
    pub same_workstation: bool,
}

impl SystemDesc {
    /// The paper's measurement configuration: 4 MB server cache, 32 MB
    /// client cache, one workstation.
    pub fn paper_default() -> Self {
        Self {
            server_cache_kb: 4 * 1024,
            client_cache_kb: 32 * 1024,
            same_workstation: true,
        }
    }
}

/// One physical operator's exclusive share of a query's counters —
/// the executor trace row, flattened for storage alongside the
/// whole-query [`Stat`]. Every field is an exactly summable counter
/// (nanoseconds, not derived seconds), so the rows of one experiment
/// add up to its query-level totals field for field.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperatorStat {
    /// Operator kind display name (`"IndexRangeScan"`, `"HashBuild"`, …).
    pub op: String,
    /// Instance label (collection name, `"result"`, `"spill"`, …).
    pub label: String,
    /// Nesting depth in the operator tree (0 = pipeline root).
    pub depth: u32,
    /// Pages read from disk to the server cache.
    pub d2sc_read_pages: u64,
    /// Pages read from the server cache to the client cache.
    pub sc2cc_read_pages: u64,
    /// Client cache misses.
    pub client_misses: u64,
    /// Handle gets of any flavour (alloc + touch + revive).
    pub handle_gets: u64,
    /// Handle teardowns.
    pub handle_frees: u64,
    /// CPU events charged.
    pub cpu_events: u64,
    /// Simulated nanoseconds of disk I/O.
    pub io_nanos: u64,
    /// Simulated nanoseconds of client↔server page shipping.
    pub rpc_nanos: u64,
    /// Simulated nanoseconds of CPU work.
    pub cpu_nanos: u64,
    /// Simulated nanoseconds of operator-memory swap faults.
    pub swap_nanos: u64,
}

impl OperatorStat {
    /// Total simulated seconds attributed to this operator.
    pub fn elapsed_secs(&self) -> f64 {
        (self.io_nanos + self.rpc_nanos + self.cpu_nanos + self.swap_nanos) as f64 / 1e9
    }
}

/// One experiment's record (paper `class Stat`).
#[derive(Clone, Debug, PartialEq)]
pub struct Stat {
    /// Experiment number (assigned by the [`StatsDb`](crate::StatsDb)).
    pub numtest: u64,
    /// The query.
    pub query: QueryDesc,
    /// The database: its extents.
    pub database: Vec<ExtentDesc>,
    /// Clustering strategy (`"class"`, `"random"`, `"composition"`).
    pub cluster: String,
    /// Algorithm (`"NL"`, `"NOJOIN"`, `"PHJ"`, `"CHJ"`, `"SeqScan"`, …).
    pub algo: String,
    /// System configuration.
    pub system: SystemDesc,
    /// Number of page faults in the client cache.
    pub cc_pagefaults: u64,
    /// Number of lookups in the client cache (hits + faults) — the
    /// denominator of [`Stat::cc_miss_rate`], carried as an integer so
    /// partial records from engine shards merge with *exact* rate
    /// recomputation (see [`crate::merge_stats`]).
    pub cc_lookups: u64,
    /// Elapsed time between the beginning and the end of the query, in
    /// seconds.
    pub elapsed_time: f64,
    /// Number of RPCs between the client cache and the server cache.
    pub rpcs_number: u64,
    /// Total size (in MB) of the messages between client and server.
    pub rpcs_total_mb: f64,
    /// Pages read from disk to the server cache.
    pub d2sc_read_pages: u64,
    /// Pages read from the server cache to the client cache.
    pub sc2cc_read_pages: u64,
    /// Miss rate (percent) in the client cache.
    pub cc_miss_rate: f64,
    /// Miss rate (percent) in the server cache.
    pub sc_miss_rate: f64,
    /// Per-operator breakdown of the run (empty when the harness did
    /// not trace operators). The rows' counters sum to the query-level
    /// fields above.
    pub operators: Vec<OperatorStat>,
}

impl Stat {
    /// Name of the database as figure captions use it: the provider
    /// extent size and link ratio, e.g. `"10^6 providers 1:3"`.
    pub fn database_label(&self) -> String {
        let provider = self.database.iter().find(|e| !e.associations.is_empty());
        match provider {
            Some(p) => {
                let ratio = p.associations.first().map(|&(_, r)| r).unwrap_or(0);
                format!("{} providers 1:{}", p.size, ratio)
            }
            None => "unknown".to_string(),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_stat(numtest: u64, algo: &str, elapsed: f64) -> Stat {
        Stat {
            numtest,
            query: QueryDesc {
                cold: true,
                projection_type: "[p.name, pa.age]".into(),
                selectivities: vec![("Patient".into(), 10), ("Provider".into(), 90)],
                text: "select ...".into(),
            },
            database: vec![
                ExtentDesc {
                    classname: "Provider".into(),
                    size: 2000,
                    associations: vec![("Patient".into(), 1000)],
                },
                ExtentDesc {
                    classname: "Patient".into(),
                    size: 2_000_000,
                    associations: vec![],
                },
            ],
            cluster: "class".into(),
            algo: algo.into(),
            system: SystemDesc::paper_default(),
            cc_pagefaults: 123,
            cc_lookups: 984,
            elapsed_time: elapsed,
            rpcs_number: 456,
            rpcs_total_mb: 1.78,
            d2sc_read_pages: 400,
            sc2cc_read_pages: 456,
            cc_miss_rate: 12.5,
            sc_miss_rate: 99.0,
            operators: vec![
                OperatorStat {
                    op: "IndexRangeScan".into(),
                    label: "Providers".into(),
                    depth: 0,
                    d2sc_read_pages: 300,
                    sc2cc_read_pages: 300,
                    client_misses: 90,
                    handle_gets: 1800,
                    handle_frees: 1800,
                    cpu_events: 5400,
                    io_nanos: 3_000_000_000,
                    rpc_nanos: 30_000_000,
                    cpu_nanos: 54_000_000,
                    swap_nanos: 0,
                },
                OperatorStat {
                    op: "Emit".into(),
                    label: "result".into(),
                    depth: 1,
                    d2sc_read_pages: 100,
                    sc2cc_read_pages: 156,
                    client_misses: 33,
                    handle_gets: 200,
                    handle_frees: 200,
                    cpu_events: 600,
                    io_nanos: 1_000_000_000,
                    rpc_nanos: 15_600_000,
                    cpu_nanos: 6_000_000,
                    swap_nanos: 0,
                },
            ],
        }
    }

    #[test]
    fn selectivity_lookup() {
        let s = sample_stat(1, "PHJ", 10.0);
        assert_eq!(s.query.selectivity_on("Patient"), Some(10));
        assert_eq!(s.query.selectivity_on("Provider"), Some(90));
        assert_eq!(s.query.selectivity_on("Nurse"), None);
    }

    #[test]
    fn database_label() {
        let s = sample_stat(1, "PHJ", 10.0);
        assert_eq!(s.database_label(), "2000 providers 1:1000");
    }

    #[test]
    fn paper_default_system() {
        let sys = SystemDesc::paper_default();
        assert_eq!(sys.client_cache_kb, 32768);
        assert!(sys.same_workstation);
    }
}
