//! Merging partial [`Stat`]s from N engine shards into one record.
//!
//! The scatter-gather router (`tq-router`) fans one query out to every
//! shard and gets back one `Stat` per shard. Because every counter in
//! the schema is an exactly summable integer (the same discipline the
//! per-operator rows follow), the merged record is *defined* — not
//! estimated — by field-wise summation:
//!
//! * extent sizes sum by classname (each shard reports its local
//!   cardinality, so the merged extent is the logical collection);
//! * integer I/O / fault / RPC counters sum;
//! * simulated seconds and RPC megabytes sum in shard order
//!   (aggregate machine-work, not wall-clock — shards run in
//!   parallel);
//! * per-operator rows merge by `(op, label, depth)` key in first-seen
//!   order, counters summing — so the PR 3 attribution invariant
//!   (rows sum to the query-level totals, field for field) commutes
//!   with the merge;
//! * miss rates are *recomputed* from the summed integers rather than
//!   averaged: `cc_miss_rate = cc_pagefaults / cc_lookups` and
//!   `sc_miss_rate = d2sc_read_pages / cc_pagefaults`, exactly the
//!   expressions the storage stack uses (every client-cache fault
//!   performs one server-cache lookup, and every server-cache miss
//!   reads one page from disk, so the denominators travel in the
//!   record already). A single-part merge is therefore a byte-for-byte
//!   identity.
//!
//! Descriptive fields (`numtest`, query, cluster, algo, system) are
//! taken from the first part: every shard ran the same logical
//! experiment, so they agree by construction.

use crate::model::{OperatorStat, Stat};

/// Percent helper, bit-identical to the storage stack's: `0.0` when
/// the denominator is zero, else `part * 100.0 / whole` in f64.
fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Folds `row`'s counters into `into` (same `(op, label, depth)` key).
fn add_operator(into: &mut OperatorStat, row: &OperatorStat) {
    into.d2sc_read_pages += row.d2sc_read_pages;
    into.sc2cc_read_pages += row.sc2cc_read_pages;
    into.client_misses += row.client_misses;
    into.handle_gets += row.handle_gets;
    into.handle_frees += row.handle_frees;
    into.cpu_events += row.cpu_events;
    into.io_nanos += row.io_nanos;
    into.rpc_nanos += row.rpc_nanos;
    into.cpu_nanos += row.cpu_nanos;
    into.swap_nanos += row.swap_nanos;
}

/// Merges per-shard partial records into the record of the logical
/// (unsharded) experiment. Returns `None` for an empty input.
///
/// Deterministic: the result depends only on the parts and their
/// order, and merging is associative — merging prefix-merges of the
/// parts yields the same record as one flat merge (integer sums are
/// associative; the two f64 fields sum left-to-right either way).
pub fn merge_stats<'a>(parts: impl IntoIterator<Item = &'a Stat>) -> Option<Stat> {
    let mut it = parts.into_iter();
    let mut out = it.next()?.clone();
    for p in it {
        for e in &p.database {
            match out.database.iter_mut().find(|o| o.classname == e.classname) {
                Some(o) => o.size += e.size,
                None => out.database.push(e.clone()),
            }
        }
        out.cc_pagefaults += p.cc_pagefaults;
        out.cc_lookups += p.cc_lookups;
        out.elapsed_time += p.elapsed_time;
        out.rpcs_number += p.rpcs_number;
        out.rpcs_total_mb += p.rpcs_total_mb;
        out.d2sc_read_pages += p.d2sc_read_pages;
        out.sc2cc_read_pages += p.sc2cc_read_pages;
        for row in &p.operators {
            match out
                .operators
                .iter_mut()
                .find(|o| o.op == row.op && o.label == row.label && o.depth == row.depth)
            {
                Some(o) => add_operator(o, row),
                None => out.operators.push(row.clone()),
            }
        }
    }
    out.cc_miss_rate = percent(out.cc_pagefaults, out.cc_lookups);
    out.sc_miss_rate = percent(out.d2sc_read_pages, out.cc_pagefaults);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_stat;
    use tq_simrng::SimRng;

    /// A stat whose rates satisfy the storage-stack invariants, so a
    /// single-part merge is a full identity.
    fn consistent_stat(numtest: u64, seedling: u64) -> Stat {
        let mut s = sample_stat(numtest, "PHJ", 10.0);
        s.cc_pagefaults = 100 + seedling;
        s.cc_lookups = 1000 + 3 * seedling;
        s.d2sc_read_pages = 40 + seedling / 2;
        s.cc_miss_rate = percent(s.cc_pagefaults, s.cc_lookups);
        s.sc_miss_rate = percent(s.d2sc_read_pages, s.cc_pagefaults);
        s
    }

    #[test]
    fn empty_input_merges_to_none() {
        assert!(merge_stats([]).is_none());
    }

    #[test]
    fn single_part_is_identity() {
        let s = consistent_stat(7, 5);
        let merged = merge_stats([&s]).unwrap();
        assert_eq!(merged, s);
    }

    #[test]
    fn counters_and_extents_sum_rates_recompute() {
        let a = consistent_stat(1, 0);
        let mut b = consistent_stat(1, 8);
        b.database[0].size = 500; // shard with fewer providers
        let merged = merge_stats([&a, &b]).unwrap();
        assert_eq!(merged.cc_pagefaults, a.cc_pagefaults + b.cc_pagefaults);
        assert_eq!(merged.cc_lookups, a.cc_lookups + b.cc_lookups);
        assert_eq!(merged.rpcs_number, a.rpcs_number + b.rpcs_number);
        assert_eq!(
            merged.d2sc_read_pages,
            a.d2sc_read_pages + b.d2sc_read_pages
        );
        assert_eq!(
            merged.sc2cc_read_pages,
            a.sc2cc_read_pages + b.sc2cc_read_pages
        );
        assert_eq!(merged.elapsed_time, a.elapsed_time + b.elapsed_time);
        assert_eq!(merged.database[0].size, a.database[0].size + 500);
        assert_eq!(merged.database[1].size, 2 * a.database[1].size);
        assert_eq!(
            merged.cc_miss_rate,
            percent(merged.cc_pagefaults, merged.cc_lookups)
        );
        assert_eq!(
            merged.sc_miss_rate,
            percent(merged.d2sc_read_pages, merged.cc_pagefaults)
        );
        // Descriptive fields come from the first part.
        assert_eq!(merged.query, a.query);
        assert_eq!(merged.algo, a.algo);
    }

    #[test]
    fn operator_rows_merge_by_key_in_first_seen_order() {
        let mut a = consistent_stat(1, 0);
        let mut b = consistent_stat(1, 1);
        // b has one shared row (same key), one extra row, and lists
        // them in a different order.
        b.operators.reverse();
        b.operators.push(OperatorStat {
            op: "Spill".into(),
            label: "spill".into(),
            depth: 2,
            cpu_events: 9,
            ..OperatorStat::default()
        });
        a.operators[0].cpu_events = 11;
        let merged = merge_stats([&a, &b]).unwrap();
        assert_eq!(merged.operators.len(), 3);
        // First-seen order: a's rows first, then b's novel row.
        assert_eq!(merged.operators[0].op, a.operators[0].op);
        assert_eq!(
            merged.operators[0].cpu_events,
            11 + b.operators[1].cpu_events
        );
        assert_eq!(merged.operators[2].op, "Spill");
        assert_eq!(merged.operators[2].cpu_events, 9);
    }

    #[test]
    fn attribution_invariant_commutes_with_merge() {
        // If each part's rows sum to its query totals, the merged rows
        // sum to the merged totals (spot-checked on shared counters).
        let parts: Vec<Stat> = (0..4).map(|i| consistent_stat(1, i * 3)).collect();
        let merged = merge_stats(parts.iter()).unwrap();
        let row_d2sc: u64 = merged.operators.iter().map(|o| o.d2sc_read_pages).sum();
        let part_rows_d2sc: u64 = parts
            .iter()
            .flat_map(|p| p.operators.iter())
            .map(|o| o.d2sc_read_pages)
            .sum();
        assert_eq!(row_d2sc, part_rows_d2sc);
        let total_sc2cc: u64 = parts.iter().map(|p| p.sc2cc_read_pages).sum();
        assert_eq!(merged.sc2cc_read_pages, total_sc2cc);
    }

    #[test]
    fn merge_is_associative_on_random_parts() {
        let mut rng = SimRng::seed_from_u64(0x5EED_933A);
        for _ in 0..50 {
            let n = 2 + rng.index(5);
            let parts: Vec<Stat> = (0..n)
                .map(|i| {
                    let mut s = consistent_stat(1, rng.index(1000) as u64);
                    s.database[0].size = 1 + rng.index(5000) as u64;
                    s.operators[0].cpu_events = rng.index(1 << 20) as u64;
                    if i % 2 == 1 {
                        s.operators.reverse();
                    }
                    s
                })
                .collect();
            let flat = merge_stats(parts.iter()).unwrap();
            let split = 1 + rng.index(n - 1);
            let left = merge_stats(parts[..split].iter()).unwrap();
            let staged = merge_stats(std::iter::once(&left).chain(parts[split..].iter()));
            assert_eq!(flat, staged.unwrap());
        }
    }
}
