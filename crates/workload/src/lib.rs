//! # tq-workload — the paper's databases
//!
//! The Derby-derived schema of the paper's Figure 1 (providers and
//! patients), generators for its two database shapes —
//!
//! * **DB1**: 2,000 providers × ~1,000 patients each (~2 M patients)
//! * **DB2**: 1,000,000 providers × ~3 patients each (~3 M patients)
//!
//! — in the three physical organizations of Figure 2 (one file per
//! class / one randomized file / composition clustering), plus the
//! §3.2 bulk-loading experiment with all its pitfalls (commit batch
//! size, transaction-off mode, cache sizing, index-before vs.
//! index-after loading).
//!
//! A [`BuildConfig::scale`] divisor shrinks object counts (and,
//! proportionally, cache sizes if asked) so tests and CI run in
//! milliseconds while the figure harness runs at paper scale.
//!
//! ## A note on `mrn` and physical order
//!
//! The three organizations are "three physical representation of the
//! same databases" (paper §2): one logical database — `upin`/`mrn`
//! ids, the randomized association, `num` values — rendered in three
//! placements (think dump/reload). Consequences: under class
//! clustering, patients are created in `mrn` order, so the `mrn`
//! index is clustered (the paper's §5 statement); under composition
//! placement (and the randomized file), `mrn` keeps its logical value
//! while placement follows the provider (or chance), so the `mrn`
//! index is *unclustered* there. The join algorithms compensate by
//! rid-sorting index results (`JoinOptions::sort_index_rids`), which
//! is what makes the paper's "patients are always accessed
//! sequentially" true in every organization.

pub mod builder;
pub mod config;
pub mod derby;
pub mod loading;
pub mod partition;
pub mod queries;

pub use builder::{build, Database};
pub use config::{BuildConfig, DbShape, Organization};
pub use derby::{patient_attr, provider_attr, DerbySchema};
pub use loading::{load_experiment, IndexTiming, LoadOptions, LoadReport};
pub use partition::{partition_database, shard_of_rid};
pub use queries::{chain3_query_text, chain4_query_text, join_query_text, ref_chain_query_text};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// Compile-time proof that a built database clone can run on a
    /// worker thread — what the parallel figure harness does per cell.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Database>();
        assert_sync::<Database>();
    }
}
