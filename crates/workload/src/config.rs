//! Database build configuration.

use tq_pagestore::{CacheConfig, CostModel};

/// The two database shapes of the paper (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbShape {
    /// 2,000 providers, ~1,000 patients each (≈2 M patients). Client
    /// sets overflow to a separate file (they exceed one page).
    Db1,
    /// 1,000,000 providers, ~3 patients each (≈3 M patients). Client
    /// sets are stored inline.
    Db2,
}

impl DbShape {
    /// Provider count at scale 1.
    pub fn providers(&self) -> u64 {
        match self {
            DbShape::Db1 => 2_000,
            DbShape::Db2 => 1_000_000,
        }
    }

    /// Mean patients per provider.
    pub fn mean_fanout(&self) -> u32 {
        match self {
            DbShape::Db1 => 1_000,
            DbShape::Db2 => 3,
        }
    }

    /// Figure-caption label.
    pub fn label(&self) -> &'static str {
        match self {
            DbShape::Db1 => "2x10^3 Providers, 2x10^6 Patients (1:1000)",
            DbShape::Db2 => "10^6 Providers, 3x10^6 Patients (1:3)",
        }
    }
}

/// The three physical organizations of Figure 2, plus the §5.3
/// alternative the paper proposes but does not build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Organization {
    /// One file per class; relationship randomized.
    ClassClustered,
    /// All objects in one file, creation order randomized.
    Randomized,
    /// Patients stored next to their provider.
    Composition,
    /// §5.3 (after Carey & Lapis): one file per class, but patients
    /// ordered by their association — "the first objects in the
    /// patients file would be patients of the first doctor in the
    /// providers file". The paper predicts selections and hash joins
    /// behave like class clustering while NL/NOJOIN keep their
    /// composition-clustering advantage.
    AssociationOrdered,
}

impl Organization {
    /// The `cluster` string recorded in `tq_statsdb` Stat records
    /// and used by figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            Organization::ClassClustered => "class",
            Organization::Randomized => "random",
            Organization::Composition => "composition",
            Organization::AssociationOrdered => "assoc-ordered",
        }
    }

    /// The paper's three organizations, in presentation order.
    pub fn all() -> [Organization; 3] {
        [
            Organization::ClassClustered,
            Organization::Randomized,
            Organization::Composition,
        ]
    }

    /// The paper's three plus the §5.3 association-ordered extension.
    pub fn all_extended() -> [Organization; 4] {
        [
            Organization::ClassClustered,
            Organization::Randomized,
            Organization::Composition,
            Organization::AssociationOrdered,
        ]
    }
}

/// Everything needed to build one database.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Which of the two paper databases.
    pub shape: DbShape,
    /// Physical organization.
    pub organization: Organization,
    /// Divisor on the provider count (1 = paper scale). Fan-out is part
    /// of the shape and is *not* scaled.
    pub scale: u32,
    /// RNG seed (fan-outs, relationship randomization, `num`,
    /// `random_integer`).
    pub seed: u64,
    /// Reserve index headroom in object headers at creation (the
    /// measured databases were created this way; setting `false`
    /// reproduces the §3.2 widening storm on first index creation).
    pub index_headroom: bool,
    /// Also record index membership in every object header after
    /// building the three indexes. Faithful but slow; the query
    /// experiments don't depend on it.
    pub register_memberships: bool,
    /// Cache configuration for the store.
    pub cache: CacheConfig,
    /// Cost model for the store.
    pub cost_model: CostModel,
}

impl BuildConfig {
    /// Paper-scale configuration for a shape/organization.
    pub fn paper(shape: DbShape, organization: Organization) -> Self {
        Self {
            shape,
            organization,
            scale: 1,
            seed: 0x5EED_0002,
            index_headroom: true,
            register_memberships: false,
            cache: CacheConfig::paper_default(),
            cost_model: CostModel::sparc20(),
        }
    }

    /// A scaled-down configuration for tests: provider count divided by
    /// `scale`, caches divided to match (so cache-vs-database ratios —
    /// which drive every interesting effect — are preserved).
    pub fn scaled(shape: DbShape, organization: Organization, scale: u32) -> Self {
        assert!(scale >= 1);
        let base = CacheConfig::paper_default();
        let mut cfg = Self::paper(shape, organization);
        cfg.scale = scale;
        cfg.cache = CacheConfig {
            client_pages: (base.client_pages / scale as usize).max(16),
            server_pages: (base.server_pages / scale as usize).max(4),
        };
        // Scale the operator memory budget with the data too (the
        // floor only guards degenerate scales; keeping the ratio is
        // what preserves the paper's swap crossovers).
        cfg.cost_model.operator_memory_budget =
            (cfg.cost_model.operator_memory_budget / scale as u64).max(128 << 10);
        cfg
    }

    /// Providers after scaling.
    pub fn provider_count(&self) -> u64 {
        (self.shape.providers() / self.scale as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(DbShape::Db1.providers(), 2_000);
        assert_eq!(DbShape::Db1.mean_fanout(), 1_000);
        assert_eq!(DbShape::Db2.providers(), 1_000_000);
        assert_eq!(DbShape::Db2.mean_fanout(), 3);
    }

    #[test]
    fn scaled_config_divides_counts_and_caches() {
        let cfg = BuildConfig::scaled(DbShape::Db2, Organization::ClassClustered, 100);
        assert_eq!(cfg.provider_count(), 10_000);
        assert_eq!(cfg.cache.client_pages, 81);
        assert_eq!(cfg.cache.server_pages, 10);
        assert!(cfg.cost_model.operator_memory_budget >= 128 << 10);
    }

    #[test]
    fn labels() {
        assert_eq!(Organization::ClassClustered.label(), "class");
        assert_eq!(Organization::all().len(), 3);
        assert!(DbShape::Db1.label().contains("1:1000"));
    }
}
