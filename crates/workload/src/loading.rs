//! The §3.2 bulk-loading experiment.
//!
//! The authors' first 4 M-object load took 12 hours; a well-configured
//! one takes about one. The difference decomposes into the pitfalls
//! this module lets you toggle:
//!
//! * **Commit batch size** — "how many objects you can create before
//!   you have to spend time committing" (they settled for 10,000).
//!   Small batches re-flush hot pages over and over.
//! * **Transaction-off mode** — loading without a log halves the write
//!   traffic.
//! * **Cache sizing** — the 4 MB/4 MB factory default vs. the tuned
//!   32 MB client cache.
//! * **Index timing** — reserving index headroom at creation vs.
//!   indexing the populated collection, which rewrites *every object
//!   header* and relocates whatever no longer fits.

use crate::config::{BuildConfig, DbShape, Organization};
use tq_pagestore::{CacheConfig, CostModel};

/// When index headroom/membership work happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexTiming {
    /// No indexes at all (baseline).
    None,
    /// Objects are created with the 8-slot index area; indexes are
    /// built and registered after load without any widening.
    HeadroomAtCreate,
    /// Objects are created with minimal headers; indexing after load
    /// widens every header — the relocation storm.
    AfterLoadWiden,
}

/// Knobs for one loading run.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Database shape to load.
    pub shape: DbShape,
    /// Scale divisor (see [`BuildConfig::scale`]).
    pub scale: u32,
    /// RNG seed.
    pub seed: u64,
    /// Load without a transaction log (the paper's recommendation).
    pub transaction_off: bool,
    /// Objects created per commit.
    pub commit_every: usize,
    /// Re-run the wiring join on every wiring commit (the naive
    /// association update the authors started with).
    pub join_rescan_on_commit: bool,
    /// Cache configuration.
    pub cache: CacheConfig,
    /// Index strategy.
    pub index_timing: IndexTiming,
}

impl LoadOptions {
    /// The configuration the authors converged on: transactions off,
    /// 10,000 objects per commit, 32 MB client cache, headroom at
    /// creation.
    pub fn tuned(shape: DbShape, scale: u32) -> Self {
        Self {
            shape,
            scale,
            seed: 0x10AD,
            transaction_off: true,
            commit_every: 10_000,
            join_rescan_on_commit: false,
            cache: CacheConfig::paper_default(),
            index_timing: IndexTiming::HeadroomAtCreate,
        }
    }

    /// The configuration they started from: logging on, tiny commit
    /// batches, factory caches, index after load.
    pub fn naive(shape: DbShape, scale: u32) -> Self {
        Self {
            shape,
            scale,
            seed: 0x10AD,
            transaction_off: false,
            commit_every: 100,
            join_rescan_on_commit: true,
            cache: CacheConfig::o2_factory_default(),
            index_timing: IndexTiming::AfterLoadWiden,
        }
    }
}

/// What one loading run did and cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Simulated elapsed seconds for the whole load.
    pub elapsed_secs: f64,
    /// Objects created (providers + patients).
    pub objects: u64,
    /// Pages written (data + relocations; excludes log).
    pub pages_written: u64,
    /// Log pages written (zero when transactions are off).
    pub log_pages_written: u64,
    /// Physical pages read back during the load.
    pub pages_read: u64,
    /// Objects whose headers were widened by post-load indexing.
    pub widened: u64,
    /// Objects relocated by the widening.
    pub relocated: u64,
    /// Simulated seconds spent in the post-load index-registration
    /// phase alone.
    pub index_phase_secs: f64,
}

/// Runs one loading experiment and reports its cost.
///
/// The load itself reuses the standard builder recipe (class-clustered
/// placement, association wiring, collections, post-load index builds)
/// but drives commits and logging per `options`.
pub fn load_experiment(options: &LoadOptions) -> LoadReport {
    load_experiment_with_db(options).0
}

/// Like [`load_experiment`], but also hands back the loaded database so
/// callers can measure the *aftermath* — e.g. how much a post-load
/// widening storm degrades later scans ("this destroys the physical
/// organization that you managed to impose", §3.2).
pub fn load_experiment_with_db(options: &LoadOptions) -> (LoadReport, crate::builder::Database) {
    use crate::builder::{IDX_MRN, IDX_NUM, IDX_UPIN};

    let mut cfg = BuildConfig::paper(options.shape, Organization::ClassClustered);
    cfg.scale = options.scale;
    cfg.seed = options.seed;
    cfg.cache = options.cache;
    cfg.cost_model = CostModel::sparc20();
    cfg.index_headroom = matches!(options.index_timing, IndexTiming::HeadroomAtCreate);
    cfg.register_memberships = false; // done explicitly below

    let knobs = crate::builder::LoadKnobs {
        transaction_off: options.transaction_off,
        commit_every: options.commit_every,
        join_rescan_on_commit: options.join_rescan_on_commit,
    };
    let mut db = crate::builder::build_with_load_knobs(&cfg, &knobs);

    // The index-registration phase runs under the same logging regime
    // as the rest of the load.
    db.store.stack_mut().logging_enabled = !options.transaction_off;
    let mut widened = 0;
    let mut relocated = 0;
    match options.index_timing {
        IndexTiming::None => {}
        IndexTiming::HeadroomAtCreate | IndexTiming::AfterLoadWiden => {
            let r1 = db.store.register_index_on_collection("Providers", IDX_UPIN);
            let r2 = db.store.register_index_on_collection("Patients", IDX_MRN);
            let r3 = db.store.register_index_on_collection("Patients", IDX_NUM);
            widened = r1.widened + r2.widened + r3.widened;
            relocated = r1.relocated + r2.relocated + r3.relocated;
            db.store.commit();
        }
    }
    db.store.stack_mut().logging_enabled = true;

    let stats = db.load_stats.expect("builder records load stats");
    let post = db.store.stats();
    let index_phase_secs = db.store.clock().elapsed_secs();
    let report = LoadReport {
        elapsed_secs: db.load_clock_secs + index_phase_secs,
        objects: db.provider_count + db.patient_count,
        pages_written: stats.pages_written + post.pages_written,
        log_pages_written: stats.log_pages_written + post.log_pages_written,
        pages_read: stats.d2sc_read_pages + post.d2sc_read_pages,
        widened,
        relocated,
        index_phase_secs,
    };
    (report, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(opts: LoadOptions) -> LoadReport {
        load_experiment(&opts)
    }

    #[test]
    fn tuned_load_beats_naive_load() {
        // Scale 50: the database (~1700 data pages) exceeds the naive
        // 4 MB caches, so per-commit join rescans hit the disk — the
        // paper's twelve-hours-instead-of-one experience.
        let tuned = report(LoadOptions::tuned(DbShape::Db2, 50));
        let naive = report(LoadOptions::naive(DbShape::Db2, 50));
        assert_eq!(tuned.objects, naive.objects);
        assert!(
            naive.elapsed_secs > 3.0 * tuned.elapsed_secs,
            "naive {:.1}s should be ≫ tuned {:.1}s",
            naive.elapsed_secs,
            tuned.elapsed_secs
        );
    }

    #[test]
    fn transaction_off_skips_the_log() {
        let mut opts = LoadOptions::tuned(DbShape::Db2, 500);
        let off = report(opts.clone());
        assert_eq!(off.log_pages_written, 0);
        opts.transaction_off = false;
        let on = report(opts);
        assert!(on.log_pages_written > 0);
        assert!(on.elapsed_secs > off.elapsed_secs);
    }

    #[test]
    fn small_commit_batches_rewrite_pages() {
        let mut opts = LoadOptions::tuned(DbShape::Db2, 500);
        opts.commit_every = 50;
        let small = report(opts.clone());
        opts.commit_every = 10_000;
        let big = report(opts);
        assert!(
            small.pages_written > big.pages_written,
            "50-object commits ({}) must write more than 10k-object commits ({})",
            small.pages_written,
            big.pages_written
        );
    }

    /// Cold sequential scan of the Patients collection: simulated
    /// seconds and physical pages read.
    fn cold_patient_scan(db: &mut crate::builder::Database) -> (f64, u64) {
        let (_, secs) = db.measure_cold(|db| {
            let mut c = db.store.collection_cursor("Patients");
            while let Some(rid) = c.next(db.store.stack_mut()) {
                let f = db.store.fetch(rid);
                db.store.unref(f.rid);
            }
        });
        let st = db.store.stats();
        (secs, st.client_hits + st.client_misses)
    }

    #[test]
    fn post_load_indexing_relocates_and_degrades_scans() {
        // Factory caches + a database larger than them: forwarder
        // chases and relocation writes actually reach the disk.
        let mut opts = LoadOptions::tuned(DbShape::Db2, 50);
        opts.cache = CacheConfig::o2_factory_default();
        opts.index_timing = IndexTiming::AfterLoadWiden;
        let (widen, mut widen_db) = load_experiment_with_db(&opts);
        assert_eq!(widen.widened, widen.objects, "every header must widen");
        assert!(widen.relocated > 0, "widening must relocate objects");
        opts.index_timing = IndexTiming::HeadroomAtCreate;
        let (headroom, mut headroom_db) = load_experiment_with_db(&opts);
        assert_eq!(headroom.widened, 0);
        assert_eq!(headroom.relocated, 0);
        // The §3.2 hard truth: widening destroyed the physical
        // organization. Relocated objects are reached through
        // forwarders, so every scan performs extra page accesses.
        // (Physical *reads* can even drop — growth consumed the fill
        // slack, leaving a denser file — but the chases and the lost
        // slack are permanent damage.)
        let (widen_secs, widen_accesses) = cold_patient_scan(&mut widen_db);
        let (headroom_secs, headroom_accesses) = cold_patient_scan(&mut headroom_db);
        assert!(
            widen_accesses > headroom_accesses,
            "forwarder chases must add page accesses ({widen_accesses} vs {headroom_accesses})"
        );
        // Document the magnitudes: both scans are in the same ballpark;
        // the chase penalty is real but bounded for sequential scans.
        assert!(widen_secs > 0.5 * headroom_secs && widen_secs < 2.0 * headroom_secs);
    }
}
