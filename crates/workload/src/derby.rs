//! The Derby-derived schema (paper Figure 1).

use tq_objstore::{AttrType, ClassId, Schema};

/// Attribute positions in class `Provider`.
pub mod provider_attr {
    /// `name: string`
    pub const NAME: usize = 0;
    /// `upin: integer` — the provider's relative position on disk.
    pub const UPIN: usize = 1;
    /// `address: string`
    pub const ADDRESS: usize = 2;
    /// `specialty: string`
    pub const SPECIALTY: usize = 3;
    /// `office: string`
    pub const OFFICE: usize = 4;
    /// `clients: set(Patient)`
    pub const CLIENTS: usize = 5;
}

/// Attribute positions in class `Patient`.
pub mod patient_attr {
    /// `name: string`
    pub const NAME: usize = 0;
    /// `mrn: integer` — assigned at creation (see crate docs).
    pub const MRN: usize = 1;
    /// `age: integer`
    pub const AGE: usize = 2;
    /// `sex: char`
    pub const SEX: usize = 3;
    /// `random_integer: integer` — uniform in `1 ..= #providers`
    /// (the paper's lrand48-filled join attribute).
    pub const RANDOM_INTEGER: usize = 4;
    /// `num: integer` — uniform random; the unclustered-index key of
    /// the §4.2 selection experiments.
    pub const NUM: usize = 5;
    /// `primary_care_provider: Provider`
    pub const PCP: usize = 6;
}

/// The schema plus the two class ids.
#[derive(Clone, Debug)]
pub struct DerbySchema {
    /// The schema object.
    pub schema: Schema,
    /// Class `Provider`.
    pub provider: ClassId,
    /// Class `Patient`.
    pub patient: ClassId,
}

impl DerbySchema {
    /// Builds the Figure 1 schema.
    pub fn new() -> Self {
        let mut schema = Schema::new();
        // Patient gets id 1; Provider's clients set forward-references it.
        let provider = schema.add_class(
            "Provider",
            vec![
                ("name", AttrType::Str),
                ("upin", AttrType::Int),
                ("address", AttrType::Str),
                ("specialty", AttrType::Str),
                ("office", AttrType::Str),
                ("clients", AttrType::SetRef(ClassId(1))),
            ],
        );
        let patient = schema.add_class(
            "Patient",
            vec![
                ("name", AttrType::Str),
                ("mrn", AttrType::Int),
                ("age", AttrType::Int),
                ("sex", AttrType::Char),
                ("random_integer", AttrType::Int),
                ("num", AttrType::Int),
                ("primary_care_provider", AttrType::Ref(provider)),
            ],
        );
        Self {
            schema,
            provider,
            patient,
        }
    }
}

impl Default for DerbySchema {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_attrs_line_up() {
        let d = DerbySchema::new();
        assert_eq!(d.schema.class_by_name("Provider"), Some(d.provider));
        assert_eq!(d.schema.class_by_name("Patient"), Some(d.patient));
        let p = d.schema.class(d.provider);
        assert_eq!(p.attr_id("upin"), Some(provider_attr::UPIN));
        assert_eq!(p.attr_id("clients"), Some(provider_attr::CLIENTS));
        let pa = d.schema.class(d.patient);
        assert_eq!(pa.attr_id("mrn"), Some(patient_attr::MRN));
        assert_eq!(pa.attr_id("num"), Some(patient_attr::NUM));
        assert_eq!(pa.attr_id("primary_care_provider"), Some(patient_attr::PCP));
        // The clients set references Patient.
        assert_eq!(
            p.attrs[provider_attr::CLIENTS].ty,
            AttrType::SetRef(d.patient)
        );
    }
}
