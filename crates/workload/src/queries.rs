//! OQL texts for the paper's queries over the Derby schema.
//!
//! The figure harness and the query service have always *hand-built*
//! their `TreeJoinSpec`s (the paper's §5 join); these builders render
//! the same queries as OQL so the engine's compile→plan→execute path
//! can be exercised against them, and add the N-way binding chains the
//! Provider↔Patient reference cycle makes possible: `clients` walks
//! 1→N, `primary_care_provider` walks back N→1, so chains of any depth
//! alternate the two classes.
//!
//! Key limits come from the same selectivity arithmetic as
//! [`Database::patient_selectivity_key`] /
//! [`Database::provider_selectivity_key`], so a chain's predicates
//! select exactly the rows the 2-way grid's cells do.

use crate::builder::Database;

/// The paper's §5 join as OQL (compiles to a `TreeJoin`).
pub fn join_query_text(db: &Database, pat_pct: u32, prov_pct: u32) -> String {
    format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {} and p.upin < {}",
        db.patient_selectivity_key(pat_pct),
        db.provider_selectivity_key(prov_pct)
    )
}

/// The depth-3 chain through the reference cycle: providers, their
/// patients, and those patients' primary-care providers (compiles to
/// a `Chain`). Since the builder makes every patient's
/// `primary_care_provider` the provider whose `clients` set holds it,
/// `z` re-finds `x` and the result count equals the 2-way join's at
/// the same selectivities — which is what makes the plan-quality
/// figure's policies comparable on results.
pub fn chain3_query_text(db: &Database, pat_pct: u32, prov_pct: u32) -> String {
    format!(
        "select z.upin from x in Providers, y in x.clients, \
         z in y.primary_care_provider \
         where x.upin < {} and y.mrn < {}",
        db.provider_selectivity_key(prov_pct),
        db.patient_selectivity_key(pat_pct)
    )
}

/// The depth-4 chain: one more `clients` hop off the re-found
/// provider. Every qualifying patient of a qualifying provider fans
/// back out to *all* of that provider's patients.
pub fn chain4_query_text(db: &Database, pat_pct: u32, prov_pct: u32) -> String {
    format!(
        "select w.num from x in Providers, y in x.clients, \
         z in y.primary_care_provider, w in z.clients \
         where x.upin < {} and y.mrn < {}",
        db.provider_selectivity_key(prov_pct),
        db.patient_selectivity_key(pat_pct)
    )
}

/// A two-binding chain through the *reference* (not the set): patients
/// and their primary-care provider. Not a `TreeJoin` shape — the first
/// binding is the child side — so it exercises the chain fallback at
/// depth 2.
pub fn ref_chain_query_text(db: &Database, pat_pct: u32) -> String {
    format!(
        "select p.upin from pa in Patients, p in pa.primary_care_provider \
         where pa.mrn < {}",
        db.patient_selectivity_key(pat_pct)
    )
}

#[cfg(test)]
mod tests {
    // Compilation of these texts to the expected query shapes
    // (TreeJoin vs. Chain, step counts) is pinned by
    // `tq-query/tests/multiway_equivalence.rs` — the dependency points
    // that way.
    use super::*;
    use crate::{build, BuildConfig, DbShape, Organization};

    #[test]
    fn key_limits_follow_the_selectivity_arithmetic() {
        let db = build(&BuildConfig::scaled(
            DbShape::Db1,
            Organization::ClassClustered,
            200,
        ));
        let pat = db.patient_selectivity_key(10);
        let prov = db.provider_selectivity_key(50);
        let join = join_query_text(&db, 10, 50);
        assert!(join.contains(&format!("pa.mrn < {pat}")), "{join}");
        assert!(join.contains(&format!("p.upin < {prov}")), "{join}");
        let c3 = chain3_query_text(&db, 10, 50);
        assert!(c3.contains("z in y.primary_care_provider"), "{c3}");
        assert!(c3.contains(&format!("x.upin < {prov}")), "{c3}");
        assert!(c3.contains(&format!("y.mrn < {pat}")), "{c3}");
        let c4 = chain4_query_text(&db, 10, 50);
        assert!(c4.contains("w in z.clients"), "{c4}");
        let r = ref_chain_query_text(&db, 10);
        assert!(r.contains("pa in Patients"), "{r}");
        assert!(r.contains(&format!("pa.mrn < {pat}")), "{r}");
    }
}
