//! Database construction for all shapes and organizations.
//!
//! The builder follows the paper's own loading recipe (§3.2): create
//! the objects (placement = creation order, chosen per organization),
//! then *update the association* between doctors and patients (the
//! authors used a join for this; we hold the assignment in memory),
//! then materialize the named collections and build the three indexes
//! post-load.

use crate::config::{BuildConfig, DbShape, Organization};
use crate::derby::DerbySchema;
#[cfg(test)]
use crate::derby::{patient_attr, provider_attr};
use tq_index::BTreeIndex;
use tq_objstore::{ObjectStore, Rid, SetValue, Value};
use tq_pagestore::StorageStack;
use tq_simrng::SimRng;

/// Index id of the clustered `Provider.upin` index.
pub const IDX_UPIN: u16 = 1;
/// Index id of the clustered `Patient.mrn` index.
pub const IDX_MRN: u16 = 2;
/// Index id of the unclustered `Patient.num` index.
pub const IDX_NUM: u16 = 3;

/// A fully built database: store, schema handles, indexes, counts.
///
/// `Clone` yields an independent copy of the whole simulated machine;
/// the figure harness builds one master per figure and clones it per
/// measurement cell so cells can run in parallel.
#[derive(Clone)]
pub struct Database {
    /// The object store (owns the storage stack and clock).
    pub store: ObjectStore,
    /// Schema handles.
    pub derby: DerbySchema,
    /// The configuration it was built from.
    pub config: BuildConfig,
    /// I/O counters accumulated while loading (before the post-build
    /// metric reset) — consumed by the §3.2 loading experiment.
    pub load_stats: Option<tq_pagestore::IoStats>,
    /// Simulated seconds the load took.
    pub load_clock_secs: f64,
    /// Number of providers stored *here* (the local shard's share when
    /// the database is a partition; the whole extent otherwise).
    pub provider_count: u64,
    /// Number of patients stored here (see [`Database::provider_count`]).
    pub patient_count: u64,
    /// Number of providers in the *logical* database — equal to
    /// `provider_count` for an unsharded build; the full pre-partition
    /// count on a shard. Selectivity keys derive from the logical
    /// counts so every shard (and the unsharded engine) agrees on key
    /// thresholds and query text.
    pub logical_provider_count: u64,
    /// Number of patients in the logical database (see
    /// [`Database::logical_provider_count`]).
    pub logical_patient_count: u64,
    /// Clustered index on `Provider.upin`.
    pub idx_provider_upin: BTreeIndex,
    /// Clustered index on `Patient.mrn`.
    pub idx_patient_mrn: BTreeIndex,
    /// Unclustered index on `Patient.num` (key is uniform random in
    /// `0 .. patient_count`).
    pub idx_patient_num: BTreeIndex,
}

impl Database {
    /// The `mrn` threshold selecting `pct`% of patients
    /// (`mrn < key`). Logical-count based: identical on every shard
    /// of a partitioned database.
    pub fn patient_selectivity_key(&self, pct: u32) -> i64 {
        (self.logical_patient_count as i64 * pct as i64) / 100
    }

    /// The `upin` threshold selecting `pct`% of providers
    /// (`upin < key`). Logical-count based, like
    /// [`Database::patient_selectivity_key`].
    pub fn provider_selectivity_key(&self, pct: u32) -> i64 {
        (self.logical_provider_count as i64 * pct as i64) / 100
    }

    /// The `num` threshold selecting `pct`% of patients (`num < key`;
    /// `num` is uniform in `0 .. logical_patient_count`).
    pub fn num_selectivity_key(&self, pct: u32) -> i64 {
        (self.logical_patient_count as i64 * pct as i64) / 100
    }

    /// Splices a committed transaction's write-set into this database:
    /// every touched file is adopted wholesale from `src` (pages stay
    /// shared — see `ObjectStore::adopt_file_from`), and the B-tree
    /// descriptors whose node file was rewritten come along with it,
    /// since root/height/entry-count live in the descriptor rather
    /// than on a page. The MVCC epoch-merge path calls this with
    /// `self` = a clone of the newest epoch and `src` = the committing
    /// session's database, after validating that `ws` is disjoint from
    /// every epoch published since the session's base.
    pub fn absorb_write_set(&mut self, src: &Database, ws: &tq_pagestore::WriteSet) {
        for fw in ws.files() {
            self.store.adopt_file_from(&src.store, fw.file);
        }
        if ws.touches(src.idx_provider_upin.file) {
            self.idx_provider_upin = src.idx_provider_upin.clone();
        }
        if ws.touches(src.idx_patient_mrn.file) {
            self.idx_patient_mrn = src.idx_patient_mrn.clone();
        }
        if ws.touches(src.idx_patient_num.file) {
            self.idx_patient_num = src.idx_patient_num.clone();
        }
    }

    /// Convenience: run a closure between a cold restart + metric reset
    /// and an end-of-query handle drain; returns elapsed simulated
    /// seconds (the paper's measurement protocol).
    pub fn measure_cold<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, f64) {
        self.store.cold_restart();
        self.store.reset_metrics();
        let out = f(self);
        self.store.end_of_query();
        (out, self.store.clock().elapsed_secs())
    }
}

/// Writes `{prefix}-{n}` padded with `.` to exactly 16 bytes into a
/// recycled string. The build loops fill millions of these; writing in
/// place keeps the whole pass off the allocator.
fn pad16_into(out: &mut String, prefix: &str, n: i64) {
    use std::fmt::Write;
    out.clear();
    let _ = write!(out, "{prefix}-{n}");
    while out.len() < 16 {
        out.push('.');
    }
    out.truncate(16);
}

fn str_slot(slot: &mut Value, prefix: &str, n: i64) {
    match slot {
        Value::Str(s) => pad16_into(s, prefix, n),
        _ => unreachable!("template slot holds a string"),
    }
}

/// Reusable attribute buffers for provider / patient records. One pair
/// serves every insert and update of a build: the string (and, for
/// Db2, inline-set) buffers are rewritten in place.
struct ValueTemplates {
    provider: Vec<Value>,
    patient: Vec<Value>,
}

impl ValueTemplates {
    fn new() -> Self {
        Self {
            provider: vec![
                Value::Str(String::new()),
                Value::Int(0),
                Value::Str(String::new()),
                Value::Str(String::new()),
                Value::Str(String::new()),
                Value::Set(SetValue::Inline(Vec::new())),
            ],
            patient: vec![
                Value::Str(String::new()),
                Value::Int(0),
                Value::Int(0),
                Value::Char(0),
                Value::Int(0),
                Value::Int(0),
                Value::Ref(Rid::nil()),
            ],
        }
    }

    /// Fills the provider attributes except the clients set (slot 5).
    fn fill_provider(&mut self, upin: i64) {
        let v = &mut self.provider;
        str_slot(&mut v[0], "prov", upin);
        v[1] = Value::Int(upin as i32);
        str_slot(&mut v[2], "addr", upin);
        str_slot(&mut v[3], "spec", upin % 40);
        str_slot(&mut v[4], "office", upin % 500);
    }

    /// Sets the provider clients slot to an inline set of `rids`,
    /// recycling the template's buffer.
    fn set_clients_inline(&mut self, rids: &[Rid]) {
        match &mut self.provider[5] {
            Value::Set(SetValue::Inline(v)) => {
                v.clear();
                v.extend_from_slice(rids);
            }
            slot => *slot = Value::Set(SetValue::Inline(rids.to_vec())),
        }
    }

    /// Sets the provider clients slot to `nil` placeholders (same
    /// encoded size as the final inline set, updated during wiring).
    fn set_clients_placeholder(&mut self, fanout: usize) {
        match &mut self.provider[5] {
            Value::Set(SetValue::Inline(v)) => {
                v.clear();
                v.resize(fanout, Rid::nil());
            }
            slot => *slot = Value::Set(SetValue::Inline(vec![Rid::nil(); fanout])),
        }
    }

    fn set_clients_overflow(&mut self, set: SetValue) {
        self.provider[5] = Value::Set(set);
    }

    fn fill_patient(
        &mut self,
        mrn: i64,
        age: i32,
        sex: u8,
        random_integer: i32,
        num: i64,
        pcp: Rid,
    ) {
        let v = &mut self.patient;
        str_slot(&mut v[0], "pat", mrn);
        v[1] = Value::Int(mrn as i32);
        v[2] = Value::Int(age);
        v[3] = Value::Char(sex);
        v[4] = Value::Int(random_integer);
        v[5] = Value::Int(num as i32);
        v[6] = Value::Ref(pcp);
    }
}

/// What gets created at one step of the creation plan. Payloads are
/// *logical* ids: provider `upin` / patient `mrn` — placement order is
/// the plan order, logical ids never change across organizations.
enum PlanItem {
    Provider(u32),
    Patient(u32),
}

/// Loading knobs for [`build_with_load_knobs`] — the §3.2 pitfalls.
#[derive(Clone, Debug)]
pub struct LoadKnobs {
    /// Load without a transaction log.
    pub transaction_off: bool,
    /// Commit after this many object creations/updates.
    pub commit_every: usize,
    /// Re-run the wiring join on every wiring commit: the paper's
    /// naive association update re-scanned both collections because
    /// "we cannot perform too many updates within the same
    /// transaction" and they had not yet learned to avoid "performing
    /// the same and very large join too many times".
    pub join_rescan_on_commit: bool,
}

impl Default for LoadKnobs {
    fn default() -> Self {
        Self {
            transaction_off: true,
            commit_every: usize::MAX,
            join_rescan_on_commit: false,
        }
    }
}

/// Restricts a build to the objects one shard owns (see
/// `partition::partition_database`). Ownership is per provider *tree*:
/// a shard owning provider `i` owns every patient assigned to `i`, so
/// no association ever crosses a shard boundary.
pub(crate) struct PartitionFilter {
    /// `own_provider[i]` — does this shard own provider (upin) `i`?
    pub own_provider: Vec<bool>,
}

/// Builds a database per `config`. Deterministic for a given seed.
/// Loads in the paper's tuned mode: transactions off, one commit at
/// the end.
pub fn build(config: &BuildConfig) -> Database {
    build_with_load_knobs(config, &LoadKnobs::default())
}

/// Builds a database with explicit §3.2 loading knobs.
pub fn build_with_load_knobs(config: &BuildConfig, knobs: &LoadKnobs) -> Database {
    build_filtered(config, knobs, None)
}

/// The build recipe, optionally restricted to one shard's objects.
///
/// The filtered build replays the *exact* unsharded recipe — every RNG
/// draw (fan-outs, assignment shuffle, plan shuffle, patient
/// attributes) happens at full size in the same order — and only then
/// skips the creation, wiring, collection and index entries of objects
/// the shard does not own. Relative placement order among owned
/// objects is therefore identical to their order in the unsharded
/// database, for every organization, and a filter that owns everything
/// reproduces the unsharded build byte for byte.
pub(crate) fn build_filtered(
    config: &BuildConfig,
    knobs: &LoadKnobs,
    filter: Option<&PartitionFilter>,
) -> Database {
    let transaction_off = knobs.transaction_off;
    let commit_every = knobs.commit_every;
    let derby = DerbySchema::new();
    let stack = StorageStack::new(config.cost_model.clone(), config.cache);
    let mut store = ObjectStore::new(derby.schema.clone(), stack);
    store.stack_mut().logging_enabled = !transaction_off;
    let mut ops_since_commit = 0usize;

    let mut rng = SimRng::seed_from_u64(config.seed);
    let p_count = config.provider_count() as usize;
    let mean = config.shape.mean_fanout();

    // Per-provider fan-outs, randomized around the mean.
    let fanouts: Vec<u32> = (0..p_count)
        .map(|_| {
            let lo = (mean / 2).max(1);
            let hi = mean + mean / 2;
            rng.range_u32(lo, hi.max(lo))
        })
        .collect();
    let n_count: usize = fanouts.iter().map(|&f| f as usize).sum();

    // Patient -> provider assignment, by *logical* patient id (mrn).
    // The same randomized relationship is used for every organization:
    // the three organizations are "three physical representation of the
    // same databases" (paper §2) — only placement differs.
    let assignment: Vec<u32> = {
        let mut a = Vec::with_capacity(n_count);
        for (i, &f) in fanouts.iter().enumerate() {
            a.extend(std::iter::repeat_n(i as u32, f as usize));
        }
        rng.shuffle(&mut a);
        a
    };

    // Creation plan: the order objects hit the disk.
    let plan: Vec<PlanItem> = match config.organization {
        Organization::ClassClustered => {
            let mut plan = Vec::with_capacity(p_count + n_count);
            plan.extend((0..p_count as u32).map(PlanItem::Provider));
            plan.extend((0..n_count as u32).map(PlanItem::Patient));
            plan
        }
        Organization::Randomized => {
            // Same logical objects, placed in shuffled order: no index
            // stays clustered.
            let mut plan = Vec::with_capacity(p_count + n_count);
            plan.extend((0..p_count as u32).map(PlanItem::Provider));
            plan.extend((0..n_count as u32).map(PlanItem::Patient));
            rng.shuffle(&mut plan);
            plan
        }
        Organization::Composition => {
            // Each provider followed by its assigned patients (a dump /
            // reload of the logical database into composition order).
            // Patient mrn values are unchanged, so the mrn index is no
            // longer clustered.
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); p_count];
            for (j, &prov) in assignment.iter().enumerate() {
                groups[prov as usize].push(j as u32);
            }
            let mut plan = Vec::with_capacity(p_count + n_count);
            for (i, group) in groups.iter().enumerate() {
                plan.push(PlanItem::Provider(i as u32));
                plan.extend(group.iter().copied().map(PlanItem::Patient));
            }
            plan
        }
        Organization::AssociationOrdered => {
            // §5.3: separate class files, but patients grouped by
            // provider in provider order. mrn stays logical, so the
            // mrn index is unclustered here too.
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); p_count];
            for (j, &prov) in assignment.iter().enumerate() {
                groups[prov as usize].push(j as u32);
            }
            let mut plan = Vec::with_capacity(p_count + n_count);
            plan.extend((0..p_count as u32).map(PlanItem::Provider));
            for group in &groups {
                plan.extend(group.iter().copied().map(PlanItem::Patient));
            }
            plan
        }
    };

    // A shard keeps only the objects it owns. The plan was built (and,
    // for Randomized, shuffled) at full size above, so the surviving
    // items keep their unsharded relative placement order.
    let own_provider = |i: u32| filter.is_none_or(|f| f.own_provider[i as usize]);
    let own_patient = |j: u32| own_provider(assignment[j as usize]);
    let plan: Vec<PlanItem> = plan
        .into_iter()
        .filter(|item| match *item {
            PlanItem::Provider(i) => own_provider(i),
            PlanItem::Patient(j) => own_patient(j),
        })
        .collect();

    // Files.
    let (provider_file, patient_file) = match config.organization {
        Organization::ClassClustered | Organization::AssociationOrdered => {
            let pf = store.create_file("providers");
            let af = store.create_file("patients");
            (pf, af)
        }
        _ => {
            let f = store.create_file("objects");
            (f, f)
        }
    };
    let overflow_file = match config.shape {
        DbShape::Db1 => Some(store.create_file("clients.overflow")),
        DbShape::Db2 => None,
    };

    // Patient attribute material, generated in creation (mrn) order.
    let nums: Vec<i64> = (0..n_count)
        .map(|_| rng.range_i64(0, n_count as i64 - 1))
        .collect();
    let random_integers: Vec<i32> = (0..n_count)
        .map(|_| rng.range_i32(1, p_count as i32))
        .collect();

    // Create everything. `*_rids` index by logical id; `*_order`
    // remember physical (creation) order — extents enumerate in
    // storage order, like a real segment scan.
    let mut provider_rids: Vec<Rid> = vec![Rid::nil(); p_count];
    let mut patient_rids: Vec<Rid> = vec![Rid::nil(); n_count];
    let mut provider_order: Vec<Rid> = Vec::with_capacity(p_count);
    let mut patient_order: Vec<Rid> = Vec::with_capacity(n_count);
    let mut templates = ValueTemplates::new();
    for item in &plan {
        match *item {
            PlanItem::Provider(i) => {
                templates.fill_provider(i as i64);
                match config.shape {
                    // Same encoded size as the final value: updated in
                    // place during wiring.
                    DbShape::Db1 => templates.set_clients_overflow(SetValue::Overflow {
                        file: overflow_file.unwrap(),
                        first_page: 0,
                        count: 0,
                    }),
                    DbShape::Db2 => templates.set_clients_placeholder(fanouts[i as usize] as usize),
                }
                let rid = store.insert(
                    provider_file,
                    derby.provider,
                    &templates.provider,
                    config.index_headroom,
                );
                provider_rids[i as usize] = rid;
                provider_order.push(rid);
            }
            PlanItem::Patient(j) => {
                let j = j as usize;
                let age = (j % 97) as i32;
                let sex = if j.is_multiple_of(2) { b'F' } else { b'M' };
                templates.fill_patient(j as i64, age, sex, random_integers[j], nums[j], Rid::nil());
                let rid = store.insert(
                    patient_file,
                    derby.patient,
                    &templates.patient,
                    config.index_headroom,
                );
                patient_rids[j] = rid;
                patient_order.push(rid);
            }
        }
        ops_since_commit += 1;
        if ops_since_commit >= commit_every {
            store.commit();
            ops_since_commit = 0;
        }
    }

    // Wire the association: patients' pcp, then providers' client sets.
    let mut clients: Vec<Vec<Rid>> = vec![Vec::new(); p_count];
    for (j, &prov) in assignment.iter().enumerate() {
        if !own_provider(prov) {
            continue;
        }
        clients[prov as usize].push(patient_rids[j]);
        let age = (j % 97) as i32;
        let sex = if j % 2 == 0 { b'F' } else { b'M' };
        templates.fill_patient(
            j as i64,
            age,
            sex,
            random_integers[j],
            nums[j],
            provider_rids[prov as usize],
        );
        let new_rid = store.update(patient_rids[j], &templates.patient);
        debug_assert_eq!(new_rid, patient_rids[j], "pcp update is same-size");
        ops_since_commit += 1;
        if ops_since_commit >= commit_every {
            store.commit();
            ops_since_commit = 0;
            if knobs.join_rescan_on_commit {
                rescan_files(&mut store, &[provider_file, patient_file]);
            }
        }
    }
    for i in 0..p_count {
        if !own_provider(i as u32) {
            continue;
        }
        templates.fill_provider(i as i64);
        match config.shape {
            DbShape::Db1 => {
                let set = store.write_overflow_set(overflow_file.unwrap(), &clients[i]);
                templates.set_clients_overflow(set);
            }
            DbShape::Db2 => templates.set_clients_inline(&clients[i]),
        }
        let new_rid = store.update(provider_rids[i], &templates.provider);
        debug_assert_eq!(new_rid, provider_rids[i], "client-set update is same-size");
        ops_since_commit += 1;
        if ops_since_commit >= commit_every {
            store.commit();
            ops_since_commit = 0;
            if knobs.join_rescan_on_commit {
                rescan_files(&mut store, &[provider_file, patient_file]);
            }
        }
    }

    /// Reads every page of the given files through the cache hierarchy
    /// — the cost of re-running the wiring join once.
    fn rescan_files(store: &mut ObjectStore, files: &[tq_pagestore::FileId]) {
        let mut unique: Vec<tq_pagestore::FileId> = Vec::new();
        for f in files {
            if !unique.contains(f) {
                unique.push(*f);
            }
        }
        for f in unique {
            let pages = store.stack().disk().file_len(f);
            for page_no in 0..pages {
                store
                    .stack_mut()
                    .read_page(tq_pagestore::PageId { file: f, page_no });
            }
        }
    }

    // Named collections (rid runs in their own files), in physical
    // order: an extent scan walks storage order.
    store.create_collection("Providers", derby.provider, &provider_order);
    store.create_collection("Patients", derby.patient, &patient_order);

    // Indexes, built after load (the paper's recommended order —
    // headroom was already reserved at creation when asked).
    // On a shard, unowned logical ids were never created (their rids
    // stayed nil) and contribute no index entries.
    let upin_entries: Vec<(i64, Rid)> = provider_rids
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_nil())
        .map(|(i, &r)| (i as i64, r))
        .collect();
    let upin_clustered = config.organization != Organization::Randomized;
    let idx_provider_upin = BTreeIndex::bulk_build(
        store.stack_mut(),
        IDX_UPIN,
        "idx.provider.upin",
        upin_clustered,
        &upin_entries,
    );
    let mrn_entries: Vec<(i64, Rid)> = patient_rids
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_nil())
        .map(|(j, &r)| (j as i64, r))
        .collect();
    let mrn_clustered = config.organization == Organization::ClassClustered;
    let idx_patient_mrn = BTreeIndex::bulk_build(
        store.stack_mut(),
        IDX_MRN,
        "idx.patient.mrn",
        mrn_clustered,
        &mrn_entries,
    );
    let mut num_entries: Vec<(i64, Rid)> = nums
        .iter()
        .zip(&patient_rids)
        .filter(|&(_, r)| !r.is_nil())
        .map(|(&n, &r)| (n, r))
        .collect();
    num_entries.sort_unstable_by_key(|&(k, _)| k);
    let idx_patient_num = BTreeIndex::bulk_build(
        store.stack_mut(),
        IDX_NUM,
        "idx.patient.num",
        false,
        &num_entries,
    );

    if config.register_memberships {
        store.register_index_on_collection("Providers", IDX_UPIN);
        store.register_index_on_collection("Patients", IDX_MRN);
        store.register_index_on_collection("Patients", IDX_NUM);
    }

    // Final commit, then snapshot what the load cost before resetting
    // metrics for the measurement phase.
    store.commit();
    let load_stats = store.stats();
    let load_clock_secs = store.clock().elapsed_secs();
    store.stack_mut().logging_enabled = true;
    store.cold_restart();
    store.reset_metrics();

    Database {
        store,
        derby,
        config: config.clone(),
        load_stats: Some(load_stats),
        load_clock_secs,
        provider_count: provider_order.len() as u64,
        patient_count: patient_order.len() as u64,
        logical_provider_count: p_count as u64,
        logical_patient_count: n_count as u64,
        idx_provider_upin,
        idx_patient_mrn,
        idx_patient_num,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_objstore::SetCursor;

    fn tiny(shape: DbShape, org: Organization) -> Database {
        // Db1/1000: 2 providers × ~1000 patients; Db2/1000: 1000 × ~3.
        build(&BuildConfig::scaled(shape, org, 1000))
    }

    #[test]
    fn counts_and_fanout_are_plausible() {
        for org in Organization::all() {
            let db = tiny(DbShape::Db2, org);
            assert_eq!(db.provider_count, 1000);
            let mean = db.patient_count as f64 / db.provider_count as f64;
            assert!(
                (2.0..4.0).contains(&mean),
                "mean fanout {mean} should be ~3 ({org:?})"
            );
        }
    }

    #[test]
    fn same_seed_same_database() {
        let a = tiny(DbShape::Db2, Organization::ClassClustered);
        let b = tiny(DbShape::Db2, Organization::ClassClustered);
        assert_eq!(a.patient_count, b.patient_count);
        assert_eq!(
            a.store.stack().disk().total_pages(),
            b.store.stack().disk().total_pages()
        );
    }

    #[test]
    fn every_patient_points_at_its_provider() {
        for org in Organization::all() {
            let mut db = tiny(DbShape::Db2, org);
            let mut cursor = db.store.collection_cursor("Patients");
            let mut checked = 0;
            while let Some(rid) = cursor.next(db.store.stack_mut()) {
                let pat = db.store.fetch(rid);
                let pcp = pat.object.values[patient_attr::PCP]
                    .as_ref_rid()
                    .expect("pcp is a ref");
                assert!(!pcp.is_nil(), "wiring left a nil pcp ({org:?})");
                let prov = db.store.fetch(pcp);
                // The provider's clients set contains the patient.
                let set = prov.object.values[provider_attr::CLIENTS]
                    .as_set()
                    .expect("clients is a set")
                    .clone();
                let mut members = db.store.set_cursor(&set);
                let mut found = false;
                while let Some(m) = members.next(db.store.stack_mut()) {
                    if m == rid {
                        found = true;
                        break;
                    }
                }
                assert!(found, "patient missing from provider's clients ({org:?})");
                db.store.unref(prov.rid);
                db.store.unref(pat.rid);
                checked += 1;
                if checked >= 50 {
                    break; // spot check; full check is O(n·fanout)
                }
            }
        }
    }

    #[test]
    fn client_sets_partition_the_patients() {
        let mut db = tiny(DbShape::Db2, Organization::ClassClustered);
        let mut seen = std::collections::HashSet::new();
        let mut cursor = db.store.collection_cursor("Providers");
        while let Some(rid) = cursor.next(db.store.stack_mut()) {
            let prov = db.store.fetch(rid);
            let set = prov.object.values[provider_attr::CLIENTS]
                .as_set()
                .unwrap()
                .clone();
            let mut members: SetCursor<'_> = db.store.set_cursor(&set);
            while let Some(m) = members.next(db.store.stack_mut()) {
                assert!(seen.insert(m), "patient in two client sets");
            }
            db.store.unref(prov.rid);
        }
        assert_eq!(seen.len() as u64, db.patient_count);
    }

    #[test]
    fn db1_uses_overflow_sets_db2_inline() {
        let mut db1 = tiny(DbShape::Db1, Organization::ClassClustered);
        let rid = {
            let mut c = db1.store.collection_cursor("Providers");
            c.next(db1.store.stack_mut()).unwrap()
        };
        let prov = db1.store.fetch(rid);
        assert!(matches!(
            prov.object.values[provider_attr::CLIENTS],
            Value::Set(SetValue::Overflow { .. })
        ));
        db1.store.unref(prov.rid);

        let mut db2 = tiny(DbShape::Db2, Organization::ClassClustered);
        let rid = {
            let mut c = db2.store.collection_cursor("Providers");
            c.next(db2.store.stack_mut()).unwrap()
        };
        let prov = db2.store.fetch(rid);
        assert!(matches!(
            prov.object.values[provider_attr::CLIENTS],
            Value::Set(SetValue::Inline(_))
        ));
        db2.store.unref(prov.rid);
    }

    #[test]
    fn class_clustering_separates_files_composition_interleaves() {
        let db_class = tiny(DbShape::Db2, Organization::ClassClustered);
        let d = db_class.store.stack().disk();
        assert!(d.file_by_name("providers").is_some());
        assert!(d.file_by_name("patients").is_some());
        let db_comp = tiny(DbShape::Db2, Organization::Composition);
        let d = db_comp.store.stack().disk();
        assert!(d.file_by_name("objects").is_some());
        assert!(d.file_by_name("providers").is_none());
    }

    #[test]
    fn composition_places_patients_next_to_their_provider() {
        let mut db = tiny(DbShape::Db2, Organization::Composition);
        let mut providers = db.store.collection_cursor("Providers");
        let p0 = providers.next(db.store.stack_mut()).unwrap();
        let p1 = providers.next(db.store.stack_mut()).unwrap();
        let prov = db.store.fetch(p0);
        let set = prov.object.values[provider_attr::CLIENTS]
            .as_set()
            .unwrap()
            .clone();
        let mut members = db.store.set_cursor(&set);
        while let Some(m) = members.next(db.store.stack_mut()) {
            assert!(
                m > p0 && m < p1,
                "client {m:?} not between {p0:?} and {p1:?}"
            );
        }
        db.store.unref(prov.rid);
    }

    #[test]
    fn mrn_index_is_clustered_only_under_class_clustering() {
        for org in Organization::all() {
            let mut db = tiny(DbShape::Db2, org);
            let entries = db
                .idx_patient_mrn
                .scan_all(db.store.stack_mut())
                .collect_all(db.store.stack_mut());
            assert_eq!(entries.len() as u64, db.patient_count);
            let physical_order = entries.windows(2).all(|w| w[0].1 < w[1].1);
            let expect = org == Organization::ClassClustered;
            assert_eq!(
                physical_order, expect,
                "mrn/physical order agreement under {org:?}"
            );
            assert_eq!(db.idx_patient_mrn.clustered, expect);
        }
    }

    #[test]
    fn the_three_organizations_store_the_same_logical_database() {
        // Same seed: identical (mrn -> upin) association in every
        // organization (paper §2: "three physical representation of
        // the same databases").
        let mut maps = Vec::new();
        for org in Organization::all() {
            let mut db = tiny(DbShape::Db2, org);
            let mut cursor = db.store.collection_cursor("Patients");
            let mut assoc: Vec<(i32, i32)> = Vec::new();
            while let Some(rid) = cursor.next(db.store.stack_mut()) {
                let pat = db.store.fetch(rid);
                let mrn = pat.object.values[patient_attr::MRN].as_int().unwrap();
                let pcp = pat.object.values[patient_attr::PCP].as_ref_rid().unwrap();
                let prov = db.store.fetch(pcp);
                let upin = prov.object.values[provider_attr::UPIN].as_int().unwrap();
                assoc.push((mrn, upin));
                db.store.unref(prov.rid);
                db.store.unref(pat.rid);
            }
            assoc.sort_unstable();
            maps.push(assoc);
        }
        assert_eq!(maps[0], maps[1]);
        assert_eq!(maps[1], maps[2]);
    }

    #[test]
    fn num_index_is_unclustered() {
        let mut db = tiny(DbShape::Db2, Organization::ClassClustered);
        let entries = db
            .idx_patient_num
            .scan_all(db.store.stack_mut())
            .collect_all(db.store.stack_mut());
        assert_eq!(entries.len() as u64, db.patient_count);
        let sorted_by_rid = entries.windows(2).all(|w| w[0].1 < w[1].1);
        assert!(!sorted_by_rid, "num order must not follow physical order");
        assert!(!db.idx_patient_num.clustered);
        assert!(db.idx_patient_mrn.clustered);
    }

    #[test]
    fn association_ordered_groups_patients_in_provider_order() {
        let mut db = tiny(DbShape::Db2, Organization::AssociationOrdered);
        // Separate class files, like class clustering.
        let d = db.store.stack().disk();
        assert!(d.file_by_name("providers").is_some());
        assert!(d.file_by_name("patients").is_some());
        // Walking providers in upin order, their client sets' rids are
        // non-decreasing across providers: patients of provider i all
        // precede patients of provider i+1.
        let mut providers = db.store.collection_cursor("Providers");
        let mut prev_max: Option<Rid> = None;
        let mut checked = 0;
        while let Some(prid) = providers.next(db.store.stack_mut()) {
            let prov = db.store.fetch(prid);
            let set = prov.object.values[provider_attr::CLIENTS]
                .as_set()
                .unwrap()
                .clone();
            db.store.unref(prov.rid);
            let mut members = db.store.set_cursor(&set);
            let mut min = Rid::nil();
            let mut max: Option<Rid> = None;
            while let Some(m) = members.next(db.store.stack_mut()) {
                if max.is_none() || Some(m) > max {
                    max = Some(m);
                }
                if min.is_nil() || m < min {
                    min = m;
                }
            }
            if let (Some(prev), false) = (prev_max, min.is_nil()) {
                assert!(
                    min > prev,
                    "patients of later providers must be placed later"
                );
            }
            if let Some(m) = max {
                prev_max = Some(m);
            }
            checked += 1;
            if checked > 200 {
                break;
            }
        }
        // And the mrn index is unclustered here (mrn stays logical).
        assert!(!db.idx_patient_mrn.clustered);
        assert!(db.idx_provider_upin.clustered);
    }

    #[test]
    fn selectivity_keys() {
        let db = tiny(DbShape::Db2, Organization::ClassClustered);
        assert_eq!(db.patient_selectivity_key(10), db.patient_count as i64 / 10);
        assert_eq!(db.provider_selectivity_key(90), 900);
    }

    #[test]
    fn measure_cold_resets_and_reports() {
        let mut db = tiny(DbShape::Db2, Organization::ClassClustered);
        let (n, secs) = db.measure_cold(|db| {
            let mut c = db.store.collection_cursor("Patients");
            let mut n = 0;
            while let Some(rid) = c.next(db.store.stack_mut()) {
                let f = db.store.fetch(rid);
                db.store.unref(f.rid);
                n += 1;
            }
            n
        });
        assert_eq!(n as u64, db.patient_count);
        assert!(secs > 0.0);
        // Cold: the data pages were actually read from "disk".
        assert!(db.store.stats().d2sc_read_pages > 0);
    }
}
