//! Rid-hash partitioning of a built database across N engine shards.
//!
//! The unit of distribution is the provider *tree*: a shard owning a
//! provider owns every patient assigned to it, so the `pcp` reference
//! and the `clients` set never cross a shard boundary and every join
//! the workload runs is shard-local. Ownership itself is a hash of the
//! provider's physical rid **in the base (unsharded) build** — genuine
//! Rid-hash placement, not round-robin — so it is deterministic for a
//! given base and shard count, and any client can recompute it.
//!
//! Shards are built by re-running the deterministic loading recipe
//! with a [`PartitionFilter`] (see `builder::build_filtered`): every
//! RNG draw happens at full size in the unsharded order, then objects
//! the shard does not own are skipped. Consequences the router's merge
//! oracle relies on:
//!
//! * shard extents partition the logical extents — local
//!   `provider_count` / `patient_count` sum exactly to the base's;
//! * `logical_*` counts (and therefore selectivity keys and query
//!   text) are identical on every shard and equal to the base's;
//! * a 1-way partition reproduces the base build byte for byte.

use crate::builder::{build_filtered, Database, LoadKnobs, PartitionFilter};
use tq_objstore::Rid;

/// The shard (of `shards`) owning objects placed at `rid`.
///
/// Hashes the rid's stable byte encoding, so the mapping is a pure
/// function of (rid, shards). FxHash has no finalizer — its low bits
/// are barely mixed (HashMap only consumes the high bits) — so the
/// high half is folded down before the modulus.
pub fn shard_of_rid(rid: Rid, shards: u32) -> u32 {
    let h = tq_fasthash::hash_one(&rid.encode()[..]);
    ((h ^ (h >> 32)) % shards as u64) as u32
}

/// Splits `base` into `shards` databases, each holding the provider
/// trees whose base-build rid hashes to it. `shards` must be ≥ 1.
pub fn partition_database(base: &Database, shards: u32) -> Vec<Database> {
    assert!(shards >= 1, "shard count must be >= 1");
    // Ownership comes from the base build's physical provider rids:
    // scan the upin index (logical id -> rid) on a clone so the base's
    // caches and counters stay untouched.
    let mut probe = base.clone();
    let entries = probe
        .idx_provider_upin
        .scan_all(probe.store.stack_mut())
        .collect_all(probe.store.stack_mut());
    let p_count = base.logical_provider_count as usize;
    assert_eq!(entries.len(), p_count, "upin index covers every provider");
    let mut own: Vec<Vec<bool>> = vec![vec![false; p_count]; shards as usize];
    for &(upin, rid) in &entries {
        let s = shard_of_rid(rid, shards) as usize;
        own[s][upin as usize] = true;
    }
    own.into_iter()
        .map(|own_provider| {
            build_filtered(
                &base.config,
                &LoadKnobs::default(),
                Some(&PartitionFilter { own_provider }),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::config::{BuildConfig, DbShape, Organization};
    use crate::derby::{patient_attr, provider_attr};

    fn base(org: Organization) -> Database {
        build(&BuildConfig::scaled(DbShape::Db2, org, 1000))
    }

    /// The (mrn -> upin) association map of one database.
    fn association(db: &mut Database) -> Vec<(i32, i32)> {
        let mut cursor = db.store.collection_cursor("Patients");
        let mut assoc = Vec::new();
        while let Some(rid) = cursor.next(db.store.stack_mut()) {
            let pat = db.store.fetch(rid);
            let mrn = pat.object.values[patient_attr::MRN].as_int().unwrap();
            let pcp = pat.object.values[patient_attr::PCP].as_ref_rid().unwrap();
            assert!(!pcp.is_nil(), "patient must point at a local provider");
            let prov = db.store.fetch(pcp);
            let upin = prov.object.values[provider_attr::UPIN].as_int().unwrap();
            assoc.push((mrn, upin));
            db.store.unref(prov.rid);
            db.store.unref(pat.rid);
        }
        assoc
    }

    #[test]
    fn one_way_partition_reproduces_the_base_build() {
        for org in [Organization::ClassClustered, Organization::Randomized] {
            let b = base(org);
            let mut shards = partition_database(&b, 1);
            assert_eq!(shards.len(), 1);
            let s = shards.pop().unwrap();
            assert_eq!(s.provider_count, b.provider_count);
            assert_eq!(s.patient_count, b.patient_count);
            assert_eq!(s.logical_provider_count, b.logical_provider_count);
            assert_eq!(
                s.store.stack().disk().total_pages(),
                b.store.stack().disk().total_pages(),
                "1-way partition must be byte-identical ({org:?})"
            );
        }
    }

    #[test]
    fn shards_partition_the_logical_database() {
        for org in Organization::all() {
            let mut b = base(org);
            let mut shards = partition_database(&b, 4);
            let mut providers = 0;
            let mut patients = 0;
            let mut union: Vec<(i32, i32)> = Vec::new();
            for s in &mut shards {
                providers += s.provider_count;
                patients += s.patient_count;
                assert_eq!(s.logical_provider_count, b.provider_count);
                assert_eq!(s.logical_patient_count, b.patient_count);
                union.extend(association(s));
            }
            assert_eq!(providers, b.provider_count, "{org:?}");
            assert_eq!(patients, b.patient_count, "{org:?}");
            // Each patient appears on exactly one shard, wired to the
            // same provider as in the base database.
            union.sort_unstable();
            let mut expect = association(&mut b);
            expect.sort_unstable();
            assert_eq!(union, expect, "{org:?}");
        }
    }

    #[test]
    fn shard_choice_follows_the_base_rid_hash() {
        let b = base(Organization::ClassClustered);
        let mut probe = b.clone();
        let entries = probe
            .idx_provider_upin
            .scan_all(probe.store.stack_mut())
            .collect_all(probe.store.stack_mut());
        let shards = partition_database(&b, 2);
        let mut probe0 = shards[0].clone();
        let owned0: Vec<i64> = probe0
            .idx_provider_upin
            .scan_all(probe0.store.stack_mut())
            .collect_all(probe0.store.stack_mut())
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let expect0: Vec<i64> = entries
            .iter()
            .filter(|&&(_, rid)| shard_of_rid(rid, 2) == 0)
            .map(|&(k, _)| k)
            .collect();
        assert_eq!(owned0, expect0);
        assert!(!owned0.is_empty(), "hash should spread providers");
        assert_ne!(owned0.len() as u64, b.provider_count);
    }

    #[test]
    fn selectivity_keys_are_shard_invariant() {
        let b = base(Organization::ClassClustered);
        for s in partition_database(&b, 3) {
            for pct in [1, 10, 50, 90] {
                assert_eq!(
                    s.patient_selectivity_key(pct),
                    b.patient_selectivity_key(pct)
                );
                assert_eq!(
                    s.provider_selectivity_key(pct),
                    b.provider_selectivity_key(pct)
                );
                assert_eq!(s.num_selectivity_key(pct), b.num_selectivity_key(pct));
            }
        }
    }
}
