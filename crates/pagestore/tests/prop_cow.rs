//! Copy-on-write snapshot tests.
//!
//! The figure harness clones one master database per measurement cell;
//! since PR 2 a clone shares every page with its master until one side
//! writes. Two things must hold:
//!
//! 1. **Sharing** — an unmutated clone allocates no new page bytes,
//!    and read-only traffic (including cache faults) never unshares.
//! 2. **Isolation** — once either side writes, the other side must
//!    never observe it: every page compares bit-for-bit against a
//!    deep-copy oracle that received the same operations.

use tq_pagestore::{CacheConfig, CostModel, PageId, SlottedPage, StorageStack, PAGE_SIZE};
use tq_simrng::SimRng;

fn small_stack() -> StorageStack {
    StorageStack::new(
        CostModel::sparc20(),
        CacheConfig {
            client_pages: 64,
            server_pages: 16,
        },
    )
}

/// Builds a master with `files` files of `pages_per_file` pages, each
/// seeded with a few records, committed and cold.
fn build_master(rng: &mut SimRng, files: u32, pages_per_file: u32) -> StorageStack {
    let mut s = small_stack();
    for f in 0..files {
        let fid = s.create_file(format!("file{f}"));
        for _ in 0..pages_per_file {
            let pid = s.allocate_page(fid);
            let n = rng.range_u32(1, 5);
            for _ in 0..n {
                let len = rng.range_u32(8, 200) as usize;
                let mut rec = vec![0u8; len];
                rng.fill_bytes(&mut rec);
                s.write_page(pid, |p| p.insert(&rec, PAGE_SIZE).unwrap());
            }
        }
    }
    s.cold_restart();
    s.reset_metrics();
    s
}

#[test]
fn unmutated_clone_shares_every_page() {
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    let master = build_master(&mut rng, 3, 40);
    let total = master.disk().total_pages();
    assert_eq!(total, 120);

    let mut clone = master.clone();
    assert_eq!(
        master.disk().shared_page_count(clone.disk()),
        total,
        "a fresh clone must share every page"
    );
    assert_eq!(clone.disk().private_page_bytes(), 0);
    assert_eq!(master.disk().private_page_bytes(), 0);

    // A cold read-only sweep (cache faults, RPCs, disk reads) must not
    // copy a single page.
    for f in 0..3u32 {
        let file = clone.disk().file_by_name(&format!("file{f}")).unwrap();
        for page_no in 0..clone.disk().file_len(file) {
            let pid = PageId { file, page_no };
            assert!(clone.read_page(pid).live_records() > 0);
        }
    }
    assert_eq!(
        master.disk().shared_page_count(clone.disk()),
        total,
        "reads must never unshare"
    );

    // The first write unshares exactly the page written.
    let file = clone.disk().file_by_name("file1").unwrap();
    let pid = PageId { file, page_no: 7 };
    clone.write_page(pid, |p| {
        p.insert(b"dirty", PAGE_SIZE).unwrap();
    });
    assert!(!master.disk().page_shared_with(clone.disk(), pid));
    assert_eq!(master.disk().shared_page_count(clone.disk()), total - 1);
    assert_eq!(
        clone.disk().private_page_bytes(),
        PAGE_SIZE as u64,
        "one copy-on-write fault = one private page"
    );
    // The master never sees the clone's record.
    assert_eq!(
        master.disk().peek(pid).live_records(),
        clone.disk().peek(pid).live_records() - 1
    );
}

/// One mutation side: a stack under test plus its deep-copy oracle
/// (plain `SlottedPage`s that receive the same operations).
struct Side {
    stack: StorageStack,
    oracle: Vec<Vec<SlottedPage>>,
    files: Vec<tq_pagestore::FileId>,
}

impl Side {
    fn snapshot_of(master: &StorageStack) -> Side {
        let stack = master.clone();
        let files: Vec<_> = (0..3u32)
            .map(|f| stack.disk().file_by_name(&format!("file{f}")).unwrap())
            .collect();
        let oracle = files
            .iter()
            .map(|&f| {
                (0..stack.disk().file_len(f))
                    .map(|page_no| stack.disk().peek(PageId { file: f, page_no }).clone())
                    .collect()
            })
            .collect();
        Side {
            stack,
            oracle,
            files,
        }
    }

    /// Applies one random op to both the stack and the oracle,
    /// asserting the page-level outcome matches.
    fn random_op(&mut self, rng: &mut SimRng) {
        let fi = rng.index(self.files.len());
        let file = self.files[fi];
        match rng.below(10) {
            // Allocate a fresh page (grows the file on this side only).
            0 => {
                let pid = self.stack.allocate_page(file);
                assert_eq!(pid.page_no as usize, self.oracle[fi].len());
                self.oracle[fi].push(SlottedPage::new());
            }
            // Commit / cold restart: pure cache+counter machinery.
            1 => {
                if rng.bool() {
                    self.stack.commit();
                } else {
                    self.stack.cold_restart();
                }
            }
            // Insert a random record into a random page.
            2..=5 => {
                let page_no = rng.index(self.oracle[fi].len()) as u32;
                let pid = PageId { file, page_no };
                let len = rng.range_u32(8, 600) as usize;
                let mut rec = vec![0u8; len];
                rng.fill_bytes(&mut rec);
                let got = self.stack.write_page(pid, |p| p.insert(&rec, PAGE_SIZE));
                let want = self.oracle[fi][page_no as usize].insert(&rec, PAGE_SIZE);
                assert_eq!(got, want, "insert outcome must match the oracle");
            }
            // Update a random slot.
            6..=7 => {
                let page_no = rng.index(self.oracle[fi].len()) as u32;
                let pid = PageId { file, page_no };
                let slot = (rng.next_u32() % 8) as u16;
                let len = rng.range_u32(4, 300) as usize;
                let mut rec = vec![0u8; len];
                rng.fill_bytes(&mut rec);
                let got = self.stack.write_page(pid, |p| p.update(slot, &rec));
                let want = self.oracle[fi][page_no as usize].update(slot, &rec);
                assert_eq!(got, want, "update outcome must match the oracle");
            }
            // Free a random slot.
            _ => {
                let page_no = rng.index(self.oracle[fi].len()) as u32;
                let pid = PageId { file, page_no };
                let slot = (rng.next_u32() % 8) as u16;
                let got = self.stack.write_page(pid, |p| p.free(slot));
                let want = self.oracle[fi][page_no as usize].free(slot);
                assert_eq!(got, want, "free outcome must match the oracle");
            }
        }
    }

    /// Every page must equal its oracle, byte for byte.
    fn check_against_oracle(&self) {
        for (fi, &file) in self.files.iter().enumerate() {
            assert_eq!(
                self.stack.disk().file_len(file) as usize,
                self.oracle[fi].len()
            );
            for (page_no, want) in self.oracle[fi].iter().enumerate() {
                let pid = PageId {
                    file,
                    page_no: page_no as u32,
                };
                assert_eq!(
                    self.stack.disk().peek(pid).as_bytes()[..],
                    want.as_bytes()[..],
                    "divergence at {pid:?}"
                );
            }
        }
    }
}

/// The snapshot-isolation property: a master and three clones mutate
/// independently under a seeded random workload; every side must track
/// its own deep-copy oracle exactly, and pages untouched since the
/// snapshot must still be physically shared.
#[test]
fn interleaved_mutation_is_snapshot_isolated() {
    for seed in [1u64, 42, 0xDECADE] {
        let mut rng = SimRng::seed_from_u64(seed);
        let master = build_master(&mut rng, 3, 40);
        let baseline = master.clone(); // untouched reference snapshot

        let mut sides: Vec<Side> = (0..4).map(|_| Side::snapshot_of(&master)).collect();
        drop(master); // clones must not depend on the master's lifetime
        for step in 0..600 {
            sides[step % 4].random_op(&mut rng);
        }
        for side in &sides {
            side.check_against_oracle();
        }

        // Sharing still holds for pages no side ever dirtied: compare
        // each side against the pristine baseline snapshot.
        for side in &sides {
            let shared = baseline.disk().shared_page_count(side.stack.disk());
            assert!(
                shared > 0,
                "seed {seed}: some original pages should remain untouched"
            );
            for f in 0..3u32 {
                let file = baseline.disk().file_by_name(&format!("file{f}")).unwrap();
                for page_no in 0..baseline.disk().file_len(file) {
                    let pid = PageId { file, page_no };
                    if baseline.disk().page_shared_with(side.stack.disk(), pid) {
                        assert_eq!(
                            baseline.disk().peek(pid).as_bytes()[..],
                            side.stack.disk().peek(pid).as_bytes()[..],
                            "shared pages must be identical"
                        );
                    }
                }
            }
        }
    }
}
