//! Property tests: the slotted page against a naive in-memory model.

use proptest::prelude::*;
use std::collections::HashMap;
use tq_pagestore::{SlotId, SlottedPage, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Free(usize),
    Update(usize, Vec<u8>),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..400).prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::Free),
        2 => ((0usize..64), proptest::collection::vec(any::<u8>(), 0..400))
            .prop_map(|(s, d)| Op::Update(s, d)),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Applying a random op sequence keeps the page consistent with a
    /// HashMap model, and every live record reads back verbatim.
    #[test]
    fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut page = SlottedPage::new();
        let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
        let mut issued: Vec<SlotId> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(data) => {
                    if let Some(slot) = page.insert(&data, PAGE_SIZE) {
                        // A granted slot must not clobber a live record.
                        prop_assert!(!model.contains_key(&slot));
                        model.insert(slot, data);
                        issued.push(slot);
                    } else {
                        // Refusal is only legal when space is short.
                        prop_assert!(
                            (page.free_bytes() as usize) < data.len() + 4,
                            "refused insert of {} bytes with {} free",
                            data.len(),
                            page.free_bytes()
                        );
                    }
                }
                Op::Free(i) => {
                    if issued.is_empty() { continue; }
                    let slot = issued[i % issued.len()];
                    let was_live = model.remove(&slot).is_some();
                    prop_assert_eq!(page.free(slot), was_live);
                }
                Op::Update(i, data) => {
                    if issued.is_empty() { continue; }
                    let slot = issued[i % issued.len()];
                    let ok = page.update(slot, &data);
                    match model.get_mut(&slot) {
                        Some(old) => {
                            if ok {
                                *old = data;
                            }
                            // On failure the old record must survive.
                        }
                        None => prop_assert!(!ok, "update of freed slot must fail"),
                    }
                }
                Op::Compact => page.compact(),
            }
            // Full cross-check after every op.
            prop_assert_eq!(page.live_records(), model.len());
            for (slot, data) in &model {
                prop_assert_eq!(page.read(*slot), Some(&data[..]));
            }
            // Accounting: free bytes + live bytes + slot dir = capacity.
            let live_bytes: usize = model.values().map(Vec::len).sum();
            let dir = 4 * page.slot_count() as usize;
            prop_assert_eq!(
                page.free_bytes() as usize + live_bytes + dir,
                PAGE_SIZE - 6
            );
        }
    }

    /// Round trip through raw bytes preserves all records.
    #[test]
    fn byte_round_trip(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..15))
    {
        let mut page = SlottedPage::new();
        let slots: Vec<Option<SlotId>> =
            records.iter().map(|r| page.insert(r, PAGE_SIZE)).collect();
        let copy = SlottedPage::from_bytes(Box::new(*page.as_bytes()));
        for (rec, slot) in records.iter().zip(slots) {
            if let Some(slot) = slot {
                prop_assert_eq!(copy.read(slot), Some(&rec[..]));
            }
        }
    }
}
