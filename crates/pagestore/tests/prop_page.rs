//! Randomized model tests: the slotted page against a naive in-memory
//! model. Deterministically seeded (the registry-free stand-in for the
//! original proptest suite).

use std::collections::HashMap;
use tq_pagestore::{SlotId, SlottedPage, PAGE_SIZE};
use tq_simrng::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Free(usize),
    Update(usize, Vec<u8>),
    Compact,
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.index(max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Weighted op mix mirroring the original strategy: 3 insert : 1 free
/// : 2 update : 1 compact.
fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(7) {
        0..=2 => Op::Insert(random_bytes(rng, 400)),
        3 => Op::Free(rng.index(64)),
        4..=5 => Op::Update(rng.index(64), random_bytes(rng, 400)),
        _ => Op::Compact,
    }
}

/// Applying a random op sequence keeps the page consistent with a
/// HashMap model, and every live record reads back verbatim.
#[test]
fn page_matches_model() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(0x9A6E_0000 + case);
        let op_count = 1 + rng.index(79);
        let mut page = SlottedPage::new();
        let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
        let mut issued: Vec<SlotId> = Vec::new();

        for _ in 0..op_count {
            match random_op(&mut rng) {
                Op::Insert(data) => {
                    if let Some(slot) = page.insert(&data, PAGE_SIZE) {
                        // A granted slot must not clobber a live record.
                        assert!(!model.contains_key(&slot));
                        model.insert(slot, data);
                        issued.push(slot);
                    } else {
                        // Refusal is only legal when space is short.
                        assert!(
                            (page.free_bytes() as usize) < data.len() + 4,
                            "refused insert of {} bytes with {} free",
                            data.len(),
                            page.free_bytes()
                        );
                    }
                }
                Op::Free(i) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let slot = issued[i % issued.len()];
                    let was_live = model.remove(&slot).is_some();
                    assert_eq!(page.free(slot), was_live);
                }
                Op::Update(i, data) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let slot = issued[i % issued.len()];
                    let ok = page.update(slot, &data);
                    match model.get_mut(&slot) {
                        Some(old) => {
                            if ok {
                                *old = data;
                            }
                            // On failure the old record must survive.
                        }
                        None => assert!(!ok, "update of freed slot must fail"),
                    }
                }
                Op::Compact => page.compact(),
            }
            // Full cross-check after every op.
            assert_eq!(page.live_records(), model.len());
            for (slot, data) in &model {
                assert_eq!(page.read(*slot), Some(&data[..]));
            }
            // Accounting: free bytes + live bytes + slot dir = capacity.
            let live_bytes: usize = model.values().map(Vec::len).sum();
            let dir = 4 * page.slot_count() as usize;
            assert_eq!(page.free_bytes() as usize + live_bytes + dir, PAGE_SIZE - 6);
        }
    }
}

/// Round trip through raw bytes preserves all records.
#[test]
fn byte_round_trip() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xB17E_0000 + case);
        let record_count = 1 + rng.index(14);
        let records: Vec<Vec<u8>> = (0..record_count)
            .map(|_| random_bytes(&mut rng, 200))
            .collect();
        let mut page = SlottedPage::new();
        let slots: Vec<Option<SlotId>> =
            records.iter().map(|r| page.insert(r, PAGE_SIZE)).collect();
        let copy = SlottedPage::from_bytes(Box::new(*page.as_bytes()));
        for (rec, slot) in records.iter().zip(slots) {
            if let Some(slot) = slot {
                assert_eq!(copy.read(slot), Some(&rec[..]));
            }
        }
    }
}
