//! Randomized model tests: the O(1) LRU against a VecDeque reference
//! model. Deterministically seeded.

use std::collections::VecDeque;
use tq_pagestore::LruCache;
use tq_simrng::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Touch(u8),
    Insert(u8),
    Remove(u8),
    Clear,
}

/// Weighted op mix mirroring the original strategy: 3 touch : 4 insert
/// : 1 remove : 1 clear, keys confined to 0..32 so collisions are
/// common.
fn random_op(rng: &mut SimRng) -> Op {
    let k = (rng.next_u32() % 32) as u8;
    match rng.below(9) {
        0..=2 => Op::Touch(k),
        3..=6 => Op::Insert(k),
        7 => Op::Remove(k),
        _ => Op::Clear,
    }
}

/// The reference: front of the deque is MRU.
struct Model {
    order: VecDeque<u8>,
    cap: usize,
}

impl Model {
    fn touch(&mut self, k: u8) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == k) {
            self.order.remove(pos);
            self.order.push_front(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: u8) -> Option<u8> {
        if self.touch(k) || self.cap == 0 {
            return None;
        }
        let evicted = if self.order.len() == self.cap {
            self.order.pop_back()
        } else {
            None
        };
        self.order.push_front(k);
        evicted
    }

    fn remove(&mut self, k: u8) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == k) {
            self.order.remove(pos);
            true
        } else {
            false
        }
    }
}

#[test]
fn lru_matches_model() {
    for case in 0..256u64 {
        let mut rng = SimRng::seed_from_u64(0x14B0_0000 + case);
        let cap = rng.index(12);
        let op_count = 1 + rng.index(199);
        let mut lru = LruCache::new(cap);
        let mut model = Model {
            order: VecDeque::new(),
            cap,
        };
        for _ in 0..op_count {
            match random_op(&mut rng) {
                Op::Touch(k) => assert_eq!(lru.touch(k), model.touch(k)),
                Op::Insert(k) => assert_eq!(lru.insert(k), model.insert(k)),
                Op::Remove(k) => assert_eq!(lru.remove(&k), model.remove(k)),
                Op::Clear => {
                    lru.clear();
                    model.order.clear();
                }
            }
            assert_eq!(lru.len(), model.order.len());
            assert_eq!(lru.keys_mru_to_lru(), Vec::from(model.order.clone()));
        }
    }
}
