//! Property tests: the O(1) LRU against a VecDeque reference model.

use proptest::prelude::*;
use std::collections::VecDeque;
use tq_pagestore::LruCache;

#[derive(Debug, Clone)]
enum Op {
    Touch(u8),
    Insert(u8),
    Remove(u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(|k| Op::Touch(k % 32)),
        4 => any::<u8>().prop_map(|k| Op::Insert(k % 32)),
        1 => any::<u8>().prop_map(|k| Op::Remove(k % 32)),
        1 => Just(Op::Clear),
    ]
}

/// The reference: front of the deque is MRU.
struct Model {
    order: VecDeque<u8>,
    cap: usize,
}

impl Model {
    fn touch(&mut self, k: u8) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == k) {
            self.order.remove(pos);
            self.order.push_front(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: u8) -> Option<u8> {
        if self.touch(k) || self.cap == 0 {
            return None;
        }
        let evicted = if self.order.len() == self.cap {
            self.order.pop_back()
        } else {
            None
        };
        self.order.push_front(k);
        evicted
    }

    fn remove(&mut self, k: u8) -> bool {
        if let Some(pos) = self.order.iter().position(|&x| x == k) {
            self.order.remove(pos);
            true
        } else {
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_model(cap in 0usize..12, ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut lru = LruCache::new(cap);
        let mut model = Model { order: VecDeque::new(), cap };
        for op in ops {
            match op {
                Op::Touch(k) => prop_assert_eq!(lru.touch(k), model.touch(k)),
                Op::Insert(k) => prop_assert_eq!(lru.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(lru.remove(&k), model.remove(k)),
                Op::Clear => {
                    lru.clear();
                    model.order.clear();
                }
            }
            prop_assert_eq!(lru.len(), model.order.len());
            prop_assert_eq!(lru.keys_mru_to_lru(), Vec::from(model.order.clone()));
        }
    }
}
