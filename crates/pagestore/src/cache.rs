//! An O(1) LRU residency cache.
//!
//! Both tiers of the paper's client/server architecture (32 MB client
//! cache, 4 MB server cache) are modelled as LRU sets of [`PageId`](crate::page::PageId)s:
//! the *data* always lives on the in-memory [`Disk`](crate::disk::Disk),
//! so the caches only need to decide hit vs. miss and pick eviction
//! victims — which is all the paper's counters (`CCMissrate`,
//! `SCMissrate`, `CCPagefaults`, RPC and disk-read counts) depend on.
//!
//! Implementation: a slab of doubly-linked nodes plus a hash map from
//! key to slab index (keyed with the vendored
//! [`FxHasher`](tq_fasthash::FxHasher) — the map is the hottest lookup
//! in the whole simulator, touched twice per simulated page access).
//! `touch`, `insert` and eviction are all O(1).

use std::hash::Hash;
use tq_fasthash::{FxBuildHasher, FxHashMap};

const NIL: usize = usize::MAX;

/// Upper bound on *eager* allocation in [`LruCache::new`], in entries.
/// A cache sized for a paper-scale client (millions of pages) must not
/// pay its full footprint up front — the map and slab both start at
/// most this large and grow on demand.
const PREALLOC_CAP: usize = 1 << 20;

#[derive(Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU set.
///
/// Generic over the key so tests can model it with small integers; the
/// storage stack instantiates it with [`PageId`](crate::page::PageId).
#[derive(Clone)]
pub struct LruCache<K: Eq + Hash + Copy> {
    // (fields below; see Debug impl at the bottom of the file)
    map: FxHashMap<K, usize>,
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Copy> LruCache<K> {
    /// Creates a cache holding at most `capacity` keys. A capacity of 0
    /// is a legal degenerate cache that misses everything.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(
                capacity.min(PREALLOC_CAP),
                FxBuildHasher::default(),
            ),
            slab: Vec::with_capacity(capacity.min(PREALLOC_CAP)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `key` is resident, *without* touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Marks `key` as most recently used. Returns `true` on hit.
    pub fn touch(&mut self, key: K) -> bool {
        // Sequential scans touch the same page dozens of times in a row
        // (and rid-run cursors touch theirs once per rid); when the key
        // is already at the MRU position the map probe — the hottest
        // lookup in the simulator — can be skipped outright. Hit/miss
        // outcome and recency order are unchanged.
        if self.head != NIL && self.slab[self.head].key == key {
            return true;
        }
        let Some(&idx) = self.map.get(&key) else {
            return false;
        };
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        true
    }

    /// Inserts `key` as most recently used, evicting the LRU key if the
    /// cache is full. Returns the evicted key, if any.
    ///
    /// Inserting an already-resident key just touches it.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if self.touch(key) {
            return None;
        }
        if self.capacity == 0 {
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim_idx = self.tail;
            let victim = self.slab[victim_idx].key;
            self.unlink(victim_idx);
            self.map.remove(&victim);
            self.free.push(victim_idx);
            Some(victim)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i].key = key;
                i
            }
            None => {
                self.slab.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes `key` if resident. Returns `true` if it was.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Drops everything (a server shutdown / cold restart, which the
    /// paper performs before every measured query).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_mru_to_lru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NIL {
            out.push(self.slab[at].key);
            at = self.slab[at].next;
        }
        out
    }
}

impl<K: Eq + Hash + Copy + std::fmt::Debug> std::fmt::Debug for LruCache<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(1));
        assert_eq!(c.insert(1), None);
        assert!(c.touch(1));
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1); // order now 1,3,2
        assert_eq!(c.insert(4), Some(2));
        assert_eq!(c.keys_mru_to_lru(), vec![4, 1, 3]);
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // touch, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(1), None);
        assert!(!c.contains(&1));
        assert!(c.is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(4);
        for k in 0..4 {
            c.insert(k);
        }
        assert!(c.remove(&2));
        assert!(!c.remove(&2));
        assert_eq!(c.len(), 3);
        c.insert(9); // reuses freed slab node
        assert_eq!(c.len(), 4);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(&9));
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert!(c.contains(&2));
        assert!(!c.contains(&1));
    }

    /// Exhaustive small-trace check against a naive model.
    #[test]
    fn matches_naive_model_on_random_trace() {
        use std::collections::VecDeque;
        // Simple deterministic pseudo-random sequence.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut nxt = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 16) as u32
        };
        let mut lru = LruCache::new(5);
        let mut model: VecDeque<u32> = VecDeque::new(); // front = MRU
        for _ in 0..10_000 {
            let k = nxt();
            let model_hit = model.contains(&k);
            let hit = lru.touch(k);
            assert_eq!(hit, model_hit);
            if hit {
                let pos = model.iter().position(|&m| m == k).unwrap();
                model.remove(pos);
                model.push_front(k);
            } else {
                let evicted = lru.insert(k);
                if model.len() == 5 {
                    let victim = model.pop_back();
                    assert_eq!(evicted, victim);
                } else {
                    assert_eq!(evicted, None);
                }
                model.push_front(k);
            }
            assert_eq!(lru.keys_mru_to_lru(), Vec::from(model.clone()));
        }
    }
}
