//! # tq-pagestore — paged storage substrate
//!
//! The bottom layer of the `treequery` engine: an in-memory simulation of
//! the storage stack described in *Benchmarking Queries over Trees*
//! (SIGMOD 2000) for the O2 system:
//!
//! ```text
//!   query engine
//!        │ read/write page
//!   client cache  (default 32 MB = 8192 pages)
//!        │ RPC
//!   server cache  (default  4 MB = 1024 pages)
//!        │ disk I/O
//!   disk (files of 4 KB slotted pages)
//! ```
//!
//! Everything the paper measures at this level is a *count*: disk page
//! reads (`D2SCreadpages`), RPCs (`SC2CCreadpages`), client-cache page
//! faults, hit/miss rates. The data itself lives in an in-memory
//! [`Disk`]; the two [cache](cache::LruCache) tiers are residency
//! simulators that produce exactly those counts, and a [`CostModel`]
//! converts counted events into simulated elapsed time (the paper's own
//! accounting: 10 ms per page read plus CPU terms, §3.5/§4.2).
//!
//! Modules:
//! * [`page`] — 4 KB slotted pages with a slot directory.
//! * [`disk`] — named files of pages, read/write counters.
//! * [`cache`] — an O(1) LRU used for both cache tiers.
//! * [`stack`] — the client→server→disk [`StorageStack`].
//! * [`cost`] — simulated clock and calibrated cost constants.
//! * [`writeset`] — copy-on-write diffing for MVCC epoch publication.

pub mod cache;
pub mod cost;
pub mod disk;
pub mod page;
pub mod stack;
pub mod writeset;

pub use cache::LruCache;
pub use cost::{CostModel, CpuEvent, SimClock};
pub use disk::{Disk, FileId};
pub use page::{PageId, SlotId, SlottedPage, PAGE_SIZE};
pub use stack::{CacheConfig, IoStats, StorageStack};
pub use writeset::{FileWrites, WriteSet};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// Compile-time proof that a simulated machine can move to (and be
    /// shared with) worker threads — the figure harness runs one
    /// cloned stack per cell in parallel.
    #[test]
    fn storage_stack_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<StorageStack>();
        assert_sync::<StorageStack>();
        assert_send::<Disk>();
        assert_send::<LruCache<PageId>>();
        assert_send::<SlottedPage>();
        assert_send::<SimClock>();
        assert_send::<CostModel>();
    }
}
