//! Slotted 4 KB pages.
//!
//! The paper's O2 server stores objects in 4 KB pages ("with 4K pages,
//! partially filled — the system always leaves some extra space to deal
//! with growing strings or collections", §2). We implement the classic
//! slotted-page layout: a small header, record bytes growing downward
//! from the header, and a slot directory growing upward from the end of
//! the page. A record is addressed by its [`SlotId`], which stays stable
//! across intra-page compaction — exactly what a physical record
//! identifier (Rid) needs.
//!
//! Layout (all offsets little-endian `u16`):
//!
//! ```text
//! 0           2            4             6
//! ┌───────────┬────────────┬─────────────┬──── record bytes ──▶
//! │ slot_cnt  │ free_start │ free_bytes  │
//! └───────────┴────────────┴─────────────┴─ ...
//!                        ◀── slot dir ───┐
//!        ... ─┬──────┬──────┬──────┬─────┤
//!             │ off₃ │ len₃ │ off₂ │ ... │  (4 bytes per slot, from tail)
//!             └──────┴──────┴──────┴─────┘
//! ```
//!
//! `free_bytes` tracks reclaimable bytes (contiguous gap plus holes left
//! by freed/shrunk records); [`SlottedPage::compact`] squeezes the holes
//! out. Freed slots are tombstoned (`offset == u16::MAX`) and reused by
//! later inserts, so a slot id never silently changes meaning between a
//! free and the next insert that recycles it — callers that need
//! stronger guarantees (the object store) never reuse freed object
//! slots' semantic identity anyway.

use std::fmt;

/// Size of every page in the system, in bytes (the paper's 4 KB).
pub const PAGE_SIZE: usize = 4096;

const HEADER_BYTES: usize = 6;
const SLOT_BYTES: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Index of a record within a page's slot directory.
pub type SlotId = u16;

/// Identifies one page: a file and a page number within that file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The containing file.
    pub file: crate::disk::FileId,
    /// Zero-based page number within the file.
    pub page_no: u32,
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}:{}", self.file.0, self.page_no)
    }
}

/// A 4 KB slotted page.
///
/// Owns its backing bytes. Cloning clones the bytes (used when a page
/// is first materialized on the disk).
#[derive(Clone)]
pub struct SlottedPage {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// Creates an empty page: no slots, all space free.
    pub fn new() -> Self {
        let mut page = Self {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        page.set_slot_count(0);
        page.set_free_start(HEADER_BYTES as u16);
        page.set_free_bytes((PAGE_SIZE - HEADER_BYTES) as u16);
        page
    }

    /// Reconstructs a page from raw bytes (e.g. read back from a dump).
    ///
    /// The caller asserts the bytes were produced by this module; no
    /// structural validation beyond length is performed.
    pub fn from_bytes(bytes: Box<[u8; PAGE_SIZE]>) -> Self {
        Self { bytes }
    }

    /// The raw backing bytes.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.bytes[at], self.bytes[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots in the directory (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_start(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_free_start(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    /// Total reclaimable bytes: the contiguous gap plus interior holes.
    ///
    /// An insert of `n` bytes succeeds iff `free_bytes() >= n + 4`
    /// (record plus possibly a new slot directory entry), compacting
    /// first when the contiguous gap alone does not suffice.
    pub fn free_bytes(&self) -> u16 {
        self.read_u16(4)
    }

    fn set_free_bytes(&mut self, v: u16) {
        self.write_u16(4, v);
    }

    fn slot_dir_offset(&self, slot: SlotId) -> usize {
        PAGE_SIZE - SLOT_BYTES * (slot as usize + 1)
    }

    fn slot_entry(&self, slot: SlotId) -> (u16, u16) {
        let at = self.slot_dir_offset(slot);
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot_entry(&mut self, slot: SlotId, offset: u16, len: u16) {
        let at = self.slot_dir_offset(slot);
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Bytes of contiguous free space between the record area and the
    /// slot directory.
    fn gap(&self) -> usize {
        let dir_start = PAGE_SIZE - SLOT_BYTES * self.slot_count() as usize;
        dir_start - self.free_start() as usize
    }

    fn find_tombstone(&self) -> Option<SlotId> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == TOMBSTONE)
    }

    /// Inserts a record, returning its slot, or `None` if the page
    /// cannot hold it even after compaction.
    ///
    /// `fill_limit` caps how full the record area may become, in bytes
    /// of *used* record space; pass [`PAGE_SIZE`] for no limit. The
    /// paper notes O2 deliberately leaves slack in pages for growing
    /// values; the object store passes a fill factor through here.
    pub fn insert(&mut self, record: &[u8], fill_limit: usize) -> Option<SlotId> {
        assert!(
            record.len() < PAGE_SIZE - HEADER_BYTES - SLOT_BYTES,
            "record of {} bytes can never fit in a page",
            record.len()
        );
        let reuse = self.find_tombstone();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_BYTES };
        if (self.free_bytes() as usize) < record.len() + slot_cost {
            return None;
        }
        // Fill-factor check: refuse if used record bytes would exceed the cap.
        let used = PAGE_SIZE - HEADER_BYTES - self.free_bytes() as usize;
        if used + record.len() + slot_cost > fill_limit {
            return None;
        }
        if self.gap() < record.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.gap() >= record.len() + slot_cost);
        let offset = self.free_start();
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.bytes[offset as usize..offset as usize + record.len()].copy_from_slice(record);
        self.set_slot_entry(slot, offset, record.len() as u16);
        self.set_free_start(offset + record.len() as u16);
        self.set_free_bytes(self.free_bytes() - (record.len() + slot_cost) as u16);
        Some(slot)
    }

    /// Reads the record in `slot`, or `None` if the slot is free or out
    /// of range.
    pub fn read(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (offset, len) = self.slot_entry(slot);
        if offset == TOMBSTONE {
            return None;
        }
        Some(&self.bytes[offset as usize..offset as usize + len as usize])
    }

    /// Overwrites the record in `slot` with `record`.
    ///
    /// Succeeds in place when the new record is no longer than the old
    /// one; otherwise succeeds only if the page can absorb the growth
    /// (possibly after compaction). Returns `false` when the record
    /// must be relocated to another page — the caller's problem, and in
    /// O2 the source of the costly whole-database reallocation when the
    /// first index widens every object header (paper §3.2).
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> bool {
        let Some((offset, len)) = self.live_entry(slot) else {
            return false;
        };
        if record.len() <= len as usize {
            let start = offset as usize;
            self.bytes[start..start + record.len()].copy_from_slice(record);
            let shrink = len as usize - record.len();
            self.set_slot_entry(slot, offset, record.len() as u16);
            self.set_free_bytes(self.free_bytes() + shrink as u16);
            return true;
        }
        // Growth: free then reinsert into the same slot.
        if (self.free_bytes() as usize + len as usize) < record.len() {
            return false;
        }
        self.set_slot_entry(slot, TOMBSTONE, 0);
        self.set_free_bytes(self.free_bytes() + len);
        if self.gap() < record.len() {
            self.compact();
        }
        let offset = self.free_start();
        self.bytes[offset as usize..offset as usize + record.len()].copy_from_slice(record);
        self.set_slot_entry(slot, offset, record.len() as u16);
        self.set_free_start(offset + record.len() as u16);
        self.set_free_bytes(self.free_bytes() - record.len() as u16);
        true
    }

    /// Frees `slot`. Returns `false` if it was already free/out of range.
    pub fn free(&mut self, slot: SlotId) -> bool {
        let Some((_, len)) = self.live_entry(slot) else {
            return false;
        };
        self.set_slot_entry(slot, TOMBSTONE, 0);
        self.set_free_bytes(self.free_bytes() + len);
        true
    }

    fn live_entry(&self, slot: SlotId) -> Option<(u16, u16)> {
        if slot >= self.slot_count() {
            return None;
        }
        let entry = self.slot_entry(slot);
        (entry.0 != TOMBSTONE).then_some(entry)
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != TOMBSTONE)
            .count()
    }

    /// Iterates `(slot, record)` over live records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.read(s).map(|r| (s, r)))
    }

    /// Squeezes interior holes out of the record area. Slot ids are
    /// preserved; record offsets change.
    pub fn compact(&mut self) {
        let mut live: Vec<(SlotId, u16, u16)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != TOMBSTONE).then_some((s, off, len))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| off);
        let mut write_at = HEADER_BYTES as u16;
        for (slot, off, len) in live {
            if off != write_at {
                self.bytes
                    .copy_within(off as usize..(off + len) as usize, write_at as usize);
                self.set_slot_entry(slot, write_at, len);
            }
            write_at += len;
        }
        self.set_free_start(write_at);
    }
}

impl fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlottedPage {{ slots: {}, live: {}, free: {} }}",
            self.slot_count(),
            self.live_records(),
            self.free_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_empty() {
        let p = SlottedPage::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_records(), 0);
        assert_eq!(p.free_bytes() as usize, PAGE_SIZE - HEADER_BYTES);
        assert!(p.read(0).is_none());
    }

    #[test]
    fn insert_and_read_round_trip() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"hello", PAGE_SIZE).unwrap();
        let b = p.insert(b"world!", PAGE_SIZE).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.read(a).unwrap(), b"hello");
        assert_eq!(p.read(b).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn insert_until_full_then_fail() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec, PAGE_SIZE).is_some() {
            n += 1;
        }
        // 100 payload + 4 slot bytes each; 4090 usable.
        assert_eq!(n, (PAGE_SIZE - HEADER_BYTES) / 104);
        assert!(p.free_bytes() < 104);
    }

    #[test]
    fn fill_limit_leaves_slack() {
        let mut p = SlottedPage::new();
        let rec = [1u8; 100];
        let mut n = 0;
        while p.insert(&rec, 2048).is_some() {
            n += 1;
        }
        // Used record space stays under the limit...
        assert!(n * 104 <= 2048);
        // ...but plenty of physical space remains for growth.
        assert!(p.free_bytes() as usize > PAGE_SIZE / 2 - 110);
        // An update that grows a record can still use the slack.
        assert!(p.update(0, &[2u8; 300]));
        assert_eq!(p.read(0).unwrap(), &[2u8; 300][..]);
    }

    #[test]
    fn free_reclaims_space_and_slot() {
        let mut p = SlottedPage::new();
        let a = p.insert(&[1; 50], PAGE_SIZE).unwrap();
        let before = p.free_bytes();
        assert!(p.free(a));
        assert_eq!(p.free_bytes(), before + 50);
        assert!(p.read(a).is_none());
        assert!(!p.free(a), "double free reports failure");
        // Tombstoned slot is reused.
        let b = p.insert(&[2; 10], PAGE_SIZE).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn update_in_place_shrink_and_grow() {
        let mut p = SlottedPage::new();
        let a = p.insert(&[9; 80], PAGE_SIZE).unwrap();
        assert!(p.update(a, &[1; 40]));
        assert_eq!(p.read(a).unwrap(), &[1; 40][..]);
        assert!(p.update(a, &[2; 200]));
        assert_eq!(p.read(a).unwrap(), &[2; 200][..]);
    }

    #[test]
    fn update_fails_only_when_page_truly_full() {
        let mut p = SlottedPage::new();
        let big = vec![3u8; 2000];
        let a = p.insert(&big, PAGE_SIZE).unwrap();
        let _b = p.insert(&big, PAGE_SIZE).unwrap();
        // Growing `a` to 2100 bytes needs 100 net extra; only ~82 remain.
        assert!(!p.update(a, &vec![4u8; 4000]));
        assert_eq!(
            p.read(a).unwrap(),
            &big[..],
            "failed update must not corrupt"
        );
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut p = SlottedPage::new();
        let slots: Vec<_> = (0..20)
            .map(|i| p.insert(&[i as u8; 150], PAGE_SIZE).unwrap())
            .collect();
        for s in slots.iter().step_by(2) {
            p.free(*s);
        }
        p.compact();
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                assert!(p.read(*s).is_none());
            } else {
                assert_eq!(p.read(*s).unwrap(), &vec![i as u8; 150][..]);
            }
        }
        // After compaction the gap equals all free space.
        assert_eq!(p.gap(), p.free_bytes() as usize);
    }

    #[test]
    fn insert_reuses_holes_via_compaction() {
        let mut p = SlottedPage::new();
        // Fill with 10 × 400-byte records = 4040 bytes incl. slots.
        let slots: Vec<_> = (0..10)
            .map(|i| p.insert(&vec![i as u8; 400], PAGE_SIZE).unwrap())
            .collect();
        assert!(p.insert(&[0; 400], PAGE_SIZE).is_none());
        // Free two non-adjacent records; the 800 freed bytes are
        // fragmented, so a 700-byte insert must trigger compaction.
        p.free(slots[1]);
        p.free(slots[5]);
        let s = p
            .insert(&[7u8; 700], PAGE_SIZE)
            .expect("compaction makes room");
        assert_eq!(p.read(s).unwrap(), &[7u8; 700][..]);
        for (i, sl) in slots.iter().enumerate() {
            if i != 1 && i != 5 {
                assert_eq!(p.read(*sl).unwrap(), &vec![i as u8; 400][..]);
            }
        }
    }

    #[test]
    fn bytes_round_trip() {
        let mut p = SlottedPage::new();
        p.insert(b"persist me", PAGE_SIZE).unwrap();
        let q = SlottedPage::from_bytes((*p.as_bytes()).into());
        assert_eq!(q.read(0).unwrap(), b"persist me");
    }
}
