//! The simulated disk: named files of slotted pages.
//!
//! The paper's databases live in a handful of files ("Doctors file",
//! "Patients file", index files, an overflow file for large sets —
//! Figure 2). A [`Disk`] holds those files entirely in memory and
//! counts physical page reads and writes; latency is charged separately
//! by the [`CostModel`](crate::cost::CostModel) when the
//! [`StorageStack`](crate::stack::StorageStack) decides an access
//! actually reaches the disk (i.e. misses both caches).
//!
//! ## Copy-on-write snapshots
//!
//! The figure harness builds one master database per figure and clones
//! it per measurement cell. Pages are therefore held behind two levels
//! of [`Arc`]: each file's page vector is an `Arc<Vec<Arc<SlottedPage>>>`.
//! Cloning a [`Disk`] bumps one refcount per file — O(files), not
//! O(database bytes) — and every mutable page access goes through
//! [`Arc::make_mut`], so a clone pays for exactly the pages it
//! dirties: the file's pointer vector once (8 bytes/page), then 4 KB
//! per distinct page written. A cold read-only measurement copies
//! nothing. Nothing simulated can observe the sharing; only host wall
//! clock and RSS change.

use crate::page::{PageId, SlottedPage};
use std::fmt;
use std::sync::Arc;

/// Identifies one file on the disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[derive(Clone)]
pub(crate) struct File {
    pub(crate) name: String,
    /// Copy-on-write page storage (see the module docs): the outer
    /// `Arc` makes cloning the file free, the inner ones make the
    /// first write to each page pay for exactly that page.
    pub(crate) pages: Arc<Vec<Arc<SlottedPage>>>,
}

impl File {
    /// Mutable access to the page vector, unsharing it if needed.
    fn pages_mut(&mut self) -> &mut Vec<Arc<SlottedPage>> {
        Arc::make_mut(&mut self.pages)
    }

    /// Mutable access to one page, unsharing vector and page if needed.
    fn page_mut(&mut self, page_no: u32) -> &mut SlottedPage {
        Arc::make_mut(&mut Arc::make_mut(&mut self.pages)[page_no as usize])
    }
}

/// An in-memory disk: an ordered set of named page files.
#[derive(Clone, Default)]
pub struct Disk {
    pub(crate) files: Vec<File>,
    physical_reads: u64,
    physical_writes: u64,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new empty file and returns its id.
    pub fn create_file(&mut self, name: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File {
            name: name.into(),
            pages: Arc::new(Vec::new()),
        });
        id
    }

    /// Looks a file up by name (files are few; linear scan).
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }

    /// The name a file was created with.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name
    }

    /// Number of pages currently allocated to `file`.
    pub fn file_len(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].pages.len() as u32
    }

    /// Number of files on the disk.
    pub fn file_count(&self) -> u32 {
        self.files.len() as u32
    }

    /// Total pages across all files.
    pub fn total_pages(&self) -> u64 {
        self.files.iter().map(|f| f.pages.len() as u64).sum()
    }

    /// Appends a fresh empty page to `file` and returns its id.
    ///
    /// Allocation itself is not an I/O; the first write to the page is.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let f = &mut self.files[file.0 as usize];
        let page_no = f.pages.len() as u32;
        f.pages_mut().push(Arc::new(SlottedPage::new()));
        PageId { file, page_no }
    }

    /// Physical read access. Counts one disk read.
    pub(crate) fn read(&mut self, pid: PageId) -> &SlottedPage {
        self.physical_reads += 1;
        &self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Counts one disk write *without* touching the page — the commit
    /// and eviction write-back paths, whose mutations already happened
    /// through [`Disk::peek_mut`]. Counting separately from the
    /// mutable access stops a flush from needlessly unsharing
    /// copy-on-write pages.
    pub(crate) fn record_write(&mut self, _pid: PageId) {
        self.physical_writes += 1;
    }

    /// Access without counting — used by cache tiers once residency has
    /// been established and charged, and by tests/debug dumps.
    pub fn peek(&self, pid: PageId) -> &SlottedPage {
        &self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Mutable access without counting (see [`Disk::peek`]).
    pub(crate) fn peek_mut(&mut self, pid: PageId) -> &mut SlottedPage {
        self.files[pid.file.0 as usize].page_mut(pid.page_no)
    }

    /// Drops all pages of `file` (spill/temporary files between runs).
    /// The file id stays valid; its length returns to zero. The caller
    /// must purge any cached residency for the dropped pages.
    pub(crate) fn truncate_file(&mut self, file: FileId) -> u32 {
        let f = &mut self.files[file.0 as usize];
        let n = f.pages.len() as u32;
        f.pages_mut().clear();
        n
    }

    // ------------------------------------------------------------------
    // Copy-on-write introspection (tests, memory accounting)
    // ------------------------------------------------------------------

    /// True when `pid`'s backing bytes are physically shared with
    /// `other` (same `Arc` allocation) — the copy-on-write invariant a
    /// snapshot test spot-checks.
    pub fn page_shared_with(&self, other: &Disk, pid: PageId) -> bool {
        let (f, p) = (pid.file.0 as usize, pid.page_no as usize);
        match (self.files.get(f), other.files.get(f)) {
            (Some(a), Some(b)) => match (a.pages.get(p), b.pages.get(p)) {
                (Some(pa), Some(pb)) => Arc::ptr_eq(pa, pb),
                _ => false,
            },
            _ => false,
        }
    }

    /// Number of pages whose bytes are physically shared with `other`,
    /// comparing files positionally. An unmutated clone shares
    /// everything: `shared_page_count(&clone) == total_pages()`.
    pub fn shared_page_count(&self, other: &Disk) -> u64 {
        self.files
            .iter()
            .zip(&other.files)
            .map(|(a, b)| {
                if Arc::ptr_eq(&a.pages, &b.pages) {
                    a.pages.len() as u64
                } else {
                    a.pages
                        .iter()
                        .zip(b.pages.iter())
                        .filter(|(pa, pb)| Arc::ptr_eq(pa, pb))
                        .count() as u64
                }
            })
            .sum()
    }

    /// Page bytes this disk holds that no other snapshot can share:
    /// pages whose `Arc` refcount is 1 in a file whose pointer vector
    /// is itself unshared (a shared vector shares every page it lists,
    /// whatever the inner counts say). A fresh clone reports 0; the
    /// count grows by one page per copy-on-write fault. (Refcounts are
    /// read with relaxed ordering — exact only while no other thread is
    /// concurrently cloning, which is how the tests use it.)
    pub fn private_page_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| Arc::strong_count(&f.pages) == 1)
            .flat_map(|f| f.pages.iter())
            .filter(|p| Arc::strong_count(p) == 1)
            .count() as u64
            * crate::page::PAGE_SIZE as u64
    }

    /// Physical page reads performed so far.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Physical page writes performed so far.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes
    }
}

impl fmt::Debug for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Disk");
        d.field("reads", &self.physical_reads)
            .field("writes", &self.physical_writes);
        for file in &self.files {
            d.field(&file.name, &file.pages.len());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_find_files() {
        let mut d = Disk::new();
        let a = d.create_file("doctors");
        let b = d.create_file("patients");
        assert_ne!(a, b);
        assert_eq!(d.file_by_name("doctors"), Some(a));
        assert_eq!(d.file_by_name("patients"), Some(b));
        assert_eq!(d.file_by_name("nurses"), None);
        assert_eq!(d.file_name(b), "patients");
    }

    #[test]
    fn allocate_grows_file() {
        let mut d = Disk::new();
        let f = d.create_file("x");
        assert_eq!(d.file_len(f), 0);
        let p0 = d.allocate_page(f);
        let p1 = d.allocate_page(f);
        assert_eq!((p0.page_no, p1.page_no), (0, 1));
        assert_eq!(d.file_len(f), 2);
        assert_eq!(d.total_pages(), 2);
    }

    #[test]
    fn read_write_counters() {
        let mut d = Disk::new();
        let f = d.create_file("x");
        let pid = d.allocate_page(f);
        assert_eq!(d.physical_reads(), 0);
        d.peek_mut(pid).insert(b"abc", crate::page::PAGE_SIZE);
        d.record_write(pid);
        assert_eq!(d.physical_writes(), 1);
        assert_eq!(d.read(pid).read(0).unwrap(), b"abc");
        assert_eq!(d.physical_reads(), 1);
        // peek does not count.
        assert_eq!(d.peek(pid).read(0).unwrap(), b"abc");
        assert_eq!(d.physical_reads(), 1);
    }
}
