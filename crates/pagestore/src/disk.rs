//! The simulated disk: named files of slotted pages.
//!
//! The paper's databases live in a handful of files ("Doctors file",
//! "Patients file", index files, an overflow file for large sets —
//! Figure 2). A [`Disk`] holds those files entirely in memory and
//! counts physical page reads and writes; latency is charged separately
//! by the [`CostModel`](crate::cost::CostModel) when the
//! [`StorageStack`](crate::stack::StorageStack) decides an access
//! actually reaches the disk (i.e. misses both caches).

use crate::page::{PageId, SlottedPage};
use std::fmt;

/// Identifies one file on the disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Debug for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[derive(Clone)]
struct File {
    name: String,
    pages: Vec<SlottedPage>,
}

/// An in-memory disk: an ordered set of named page files.
#[derive(Clone, Default)]
pub struct Disk {
    files: Vec<File>,
    physical_reads: u64,
    physical_writes: u64,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new empty file and returns its id.
    pub fn create_file(&mut self, name: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File {
            name: name.into(),
            pages: Vec::new(),
        });
        id
    }

    /// Looks a file up by name (files are few; linear scan).
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }

    /// The name a file was created with.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name
    }

    /// Number of pages currently allocated to `file`.
    pub fn file_len(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].pages.len() as u32
    }

    /// Total pages across all files.
    pub fn total_pages(&self) -> u64 {
        self.files.iter().map(|f| f.pages.len() as u64).sum()
    }

    /// Appends a fresh empty page to `file` and returns its id.
    ///
    /// Allocation itself is not an I/O; the first write to the page is.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let f = &mut self.files[file.0 as usize];
        let page_no = f.pages.len() as u32;
        f.pages.push(SlottedPage::new());
        PageId { file, page_no }
    }

    /// Physical read access. Counts one disk read.
    pub(crate) fn read(&mut self, pid: PageId) -> &SlottedPage {
        self.physical_reads += 1;
        &self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Physical write access. Counts one disk write.
    pub(crate) fn write(&mut self, pid: PageId) -> &mut SlottedPage {
        self.physical_writes += 1;
        &mut self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Access without counting — used by cache tiers once residency has
    /// been established and charged, and by tests/debug dumps.
    pub fn peek(&self, pid: PageId) -> &SlottedPage {
        &self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Mutable access without counting (see [`Disk::peek`]).
    pub(crate) fn peek_mut(&mut self, pid: PageId) -> &mut SlottedPage {
        &mut self.files[pid.file.0 as usize].pages[pid.page_no as usize]
    }

    /// Drops all pages of `file` (spill/temporary files between runs).
    /// The file id stays valid; its length returns to zero. The caller
    /// must purge any cached residency for the dropped pages.
    pub(crate) fn truncate_file(&mut self, file: FileId) -> u32 {
        let f = &mut self.files[file.0 as usize];
        let n = f.pages.len() as u32;
        f.pages.clear();
        n
    }

    /// Physical page reads performed so far.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Physical page writes performed so far.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes
    }
}

impl fmt::Debug for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Disk");
        d.field("reads", &self.physical_reads)
            .field("writes", &self.physical_writes);
        for file in &self.files {
            d.field(&file.name, &file.pages.len());
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_find_files() {
        let mut d = Disk::new();
        let a = d.create_file("doctors");
        let b = d.create_file("patients");
        assert_ne!(a, b);
        assert_eq!(d.file_by_name("doctors"), Some(a));
        assert_eq!(d.file_by_name("patients"), Some(b));
        assert_eq!(d.file_by_name("nurses"), None);
        assert_eq!(d.file_name(b), "patients");
    }

    #[test]
    fn allocate_grows_file() {
        let mut d = Disk::new();
        let f = d.create_file("x");
        assert_eq!(d.file_len(f), 0);
        let p0 = d.allocate_page(f);
        let p1 = d.allocate_page(f);
        assert_eq!((p0.page_no, p1.page_no), (0, 1));
        assert_eq!(d.file_len(f), 2);
        assert_eq!(d.total_pages(), 2);
    }

    #[test]
    fn read_write_counters() {
        let mut d = Disk::new();
        let f = d.create_file("x");
        let pid = d.allocate_page(f);
        assert_eq!(d.physical_reads(), 0);
        d.write(pid).insert(b"abc", crate::page::PAGE_SIZE);
        assert_eq!(d.physical_writes(), 1);
        assert_eq!(d.read(pid).read(0).unwrap(), b"abc");
        assert_eq!(d.physical_reads(), 1);
        // peek does not count.
        assert_eq!(d.peek(pid).read(0).unwrap(), b"abc");
        assert_eq!(d.physical_reads(), 1);
    }
}
