//! Write-set extraction for MVCC epoch publication.
//!
//! A server session runs over a copy-on-write clone of a base
//! [`Disk`]: every page it dirties is unshared through
//! `Arc::make_mut`, so "what did this transaction write?" falls out of
//! pointer identity — a page whose `Arc` still aliases the base's is
//! untouched, one that doesn't was written (or sits in a file the
//! session created or grew). [`Disk::write_set_since`] walks the file
//! table once and collects exactly those pages; commit validation and
//! epoch merging are built on the result.
//!
//! Granularity note: conflicts are detected **per file**. A file is
//! the unit the engine associates out-of-page metadata with (B-tree
//! roots/heights, object-store append tails), so adopting a file
//! wholesale into a newer epoch keeps that metadata consistent, while
//! splicing individual pages from two writers into one file would
//! not. One file holds one collection (or one index), which makes
//! file-level conflicts the "overlapping page sets per collection"
//! rule of the service contract.

use crate::disk::{Disk, FileId};
use std::sync::Arc;

/// The pages one transaction dirtied in one file.
#[derive(Clone, Debug)]
pub struct FileWrites {
    /// The file, identified positionally (file ids are stable across
    /// clones of the same base).
    pub file: FileId,
    /// The file's name at extraction time (for diagnostics and typed
    /// conflict reports).
    pub name: String,
    /// Page numbers whose bytes diverged from the base.
    pub pages: Vec<u32>,
    /// The file's length in the base disk (0 when the file did not
    /// exist there).
    pub base_len: u32,
    /// The file's length in the writing disk.
    pub len: u32,
    /// True when the file did not exist in the base at all.
    pub created: bool,
}

/// Everything one transaction wrote, relative to a base snapshot.
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    files: Vec<FileWrites>,
}

impl WriteSet {
    /// True when nothing was written (a read-only transaction).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The per-file write lists.
    pub fn files(&self) -> &[FileWrites] {
        &self.files
    }

    /// Total dirtied pages across all files.
    pub fn page_count(&self) -> u64 {
        self.files.iter().map(|f| f.pages.len() as u64).sum()
    }

    /// True when the transaction created files the base did not have
    /// (e.g. it ran an operator that spills). Such a write-set can
    /// only be published over its own base, never merged forward.
    pub fn has_created_files(&self) -> bool {
        self.files.iter().any(|f| f.created)
    }

    /// Whether `file` appears in this write-set.
    pub fn touches(&self, file: FileId) -> bool {
        self.files.iter().any(|f| f.file == file)
    }

    /// First file both write-sets touch, if any — the conflict witness
    /// for first-committer-wins validation. Both lists are ordered by
    /// file id, so this is a linear merge.
    pub fn overlap_with(&self, other: &WriteSet) -> Option<&FileWrites> {
        let (mut i, mut j) = (0, 0);
        while i < self.files.len() && j < other.files.len() {
            match self.files[i].file.cmp(&other.files[j].file) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Some(&self.files[i]),
            }
        }
        None
    }
}

impl Disk {
    /// Extracts the set of pages on which `self` diverged from `base`,
    /// from which `self` was cloned. Files whose page vector still
    /// aliases the base's are skipped in O(1); otherwise pages are
    /// compared by `Arc` identity. Files beyond the base's file table
    /// count as created — except empty ones, which are the footprint
    /// of truncated spill files and carry no data to publish.
    pub fn write_set_since(&self, base: &Disk) -> WriteSet {
        let mut files = Vec::new();
        for (i, f) in self.files.iter().enumerate() {
            let id = FileId(i as u32);
            let len = f.pages.len() as u32;
            let Some(b) = base.files.get(i) else {
                if len > 0 {
                    files.push(FileWrites {
                        file: id,
                        name: f.name.clone(),
                        pages: (0..len).collect(),
                        base_len: 0,
                        len,
                        created: true,
                    });
                }
                continue;
            };
            if Arc::ptr_eq(&f.pages, &b.pages) {
                continue;
            }
            let mut pages: Vec<u32> = Vec::new();
            for (n, p) in f.pages.iter().enumerate() {
                match b.pages.get(n) {
                    Some(bp) if Arc::ptr_eq(p, bp) => {}
                    _ => pages.push(n as u32),
                }
            }
            let base_len = b.pages.len() as u32;
            // A same-length file whose every page still aliases the
            // base is clean even though its vector was unshared (a
            // spill file that grew and was truncated back leaves this
            // footprint).
            if pages.is_empty() && len == base_len {
                continue;
            }
            files.push(FileWrites {
                file: id,
                name: f.name.clone(),
                pages,
                base_len,
                len,
                created: false,
            });
        }
        WriteSet { files }
    }

    /// Cheap cleanliness check: true when no page of `self` diverged
    /// from `base` — i.e. [`Disk::write_set_since`] would be empty.
    /// A file-table truncation (fewer pages than the base) counts as a
    /// change.
    pub fn is_unchanged_since(&self, base: &Disk) -> bool {
        for (i, f) in self.files.iter().enumerate() {
            let Some(b) = base.files.get(i) else {
                if !f.pages.is_empty() {
                    return false;
                }
                continue;
            };
            if Arc::ptr_eq(&f.pages, &b.pages) {
                continue;
            }
            if f.pages.len() != b.pages.len() {
                return false;
            }
            if !f
                .pages
                .iter()
                .zip(b.pages.iter())
                .all(|(p, bp)| Arc::ptr_eq(p, bp))
            {
                return false;
            }
        }
        true
    }

    /// Adopts one file wholesale from `src`: name and page vector (an
    /// `Arc` clone — the pages stay shared with `src`). Missing slots
    /// up to `file` are filled with empty files copied by name so ids
    /// stay positional. The epoch-merge path uses this to splice a
    /// committed transaction's files into a newer head.
    pub fn adopt_file_from(&mut self, src: &Disk, file: FileId) {
        let i = file.0 as usize;
        while self.files.len() <= i {
            let name = src
                .files
                .get(self.files.len())
                .map(|f| f.name.clone())
                .unwrap_or_default();
            self.create_file(name);
        }
        self.files[i].name = src.files[i].name.clone();
        self.files[i].pages = Arc::clone(&src.files[i].pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageId, PAGE_SIZE};

    fn disk_with(files: &[(&str, u32)]) -> Disk {
        let mut d = Disk::new();
        for (name, pages) in files {
            let f = d.create_file(*name);
            for i in 0..*pages {
                let pid = d.allocate_page(f);
                d.peek_mut(pid).insert(&[*pages as u8, i as u8], PAGE_SIZE);
            }
        }
        d
    }

    #[test]
    fn clean_clone_has_empty_write_set() {
        let base = disk_with(&[("a", 3), ("b", 2)]);
        let clone = base.clone();
        assert!(clone.write_set_since(&base).is_empty());
        assert!(clone.is_unchanged_since(&base));
    }

    #[test]
    fn dirtied_pages_are_collected_per_file() {
        let base = disk_with(&[("a", 3), ("b", 2)]);
        let mut clone = base.clone();
        let f = clone.file_by_name("b").unwrap();
        clone
            .peek_mut(PageId {
                file: f,
                page_no: 1,
            })
            .insert(b"x", PAGE_SIZE);
        let ws = clone.write_set_since(&base);
        assert_eq!(ws.files().len(), 1);
        assert_eq!(ws.files()[0].name, "b");
        assert_eq!(ws.files()[0].pages, vec![1]);
        assert_eq!(ws.page_count(), 1);
        assert!(ws.touches(f));
        assert!(!ws.has_created_files());
        assert!(!clone.is_unchanged_since(&base));
    }

    #[test]
    fn appended_pages_count_as_dirty() {
        let base = disk_with(&[("a", 2)]);
        let mut clone = base.clone();
        let f = clone.file_by_name("a").unwrap();
        clone.allocate_page(f);
        let ws = clone.write_set_since(&base);
        assert_eq!(ws.files()[0].pages, vec![2]);
        assert_eq!((ws.files()[0].base_len, ws.files()[0].len), (2, 3));
    }

    #[test]
    fn created_empty_file_is_ignored_nonempty_is_dirty() {
        let base = disk_with(&[("a", 1)]);
        let mut clone = base.clone();
        let spill = clone.create_file("spill");
        assert!(clone.write_set_since(&base).is_empty());
        assert!(clone.is_unchanged_since(&base));
        clone.allocate_page(spill);
        let ws = clone.write_set_since(&base);
        assert!(ws.has_created_files());
        assert_eq!(ws.files()[0].name, "spill");
        assert!(!clone.is_unchanged_since(&base));
    }

    #[test]
    fn truncated_then_identical_spill_is_clean() {
        let base = disk_with(&[("a", 1), ("spill", 0)]);
        let mut clone = base.clone();
        let spill = clone.file_by_name("spill").unwrap();
        clone.allocate_page(spill);
        clone.truncate_file(spill);
        assert!(clone.write_set_since(&base).is_empty());
        assert!(clone.is_unchanged_since(&base));
    }

    #[test]
    fn overlap_is_detected_per_file() {
        let base = disk_with(&[("a", 2), ("b", 2), ("c", 2)]);
        let dirty = |name: &str, page: u32| {
            let mut c = base.clone();
            let f = c.file_by_name(name).unwrap();
            c.peek_mut(PageId {
                file: f,
                page_no: page,
            })
            .insert(b"x", PAGE_SIZE);
            c.write_set_since(&base)
        };
        let wa = dirty("a", 0);
        let wb = dirty("b", 1);
        let wb2 = dirty("b", 0);
        assert!(wa.overlap_with(&wb).is_none());
        // Same file, different pages: still a conflict (file granularity).
        let hit = wb.overlap_with(&wb2).unwrap();
        assert_eq!(hit.name, "b");
    }

    #[test]
    fn adopt_file_shares_pages_with_source() {
        let base = disk_with(&[("a", 2), ("b", 2)]);
        let mut writer = base.clone();
        let f = writer.file_by_name("b").unwrap();
        writer
            .peek_mut(PageId {
                file: f,
                page_no: 0,
            })
            .insert(b"committed", PAGE_SIZE);
        let mut head = base.clone();
        head.adopt_file_from(&writer, f);
        let pid = PageId {
            file: f,
            page_no: 0,
        };
        assert!(head.page_shared_with(&writer, pid));
        assert_eq!(
            head.peek(pid).read(head.peek(pid).slot_count() - 1),
            writer.peek(pid).read(writer.peek(pid).slot_count() - 1)
        );
        // Untouched file still shares with the original base.
        let a = head.file_by_name("a").unwrap();
        assert!(head.page_shared_with(
            &base,
            PageId {
                file: a,
                page_no: 0
            }
        ));
    }
}
