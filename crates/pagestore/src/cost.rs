//! Simulated clock and calibrated cost model.
//!
//! The paper measures *elapsed time* and observes (§3.5) that it
//! "evolved similarly to the number of RPCs and IOs", with the
//! exceptions explained by CPU effects (handle management, §4.3) and
//! memory swap (hash tables larger than RAM, §5.1). We therefore
//! synthesize elapsed time from counted events:
//!
//! * **I/O** — the paper's own figure of *10 ms per page read* (§4.2)
//!   for random access; sequential scans are only mildly cheaper
//!   (8 ms): the O2 server ships pages one RPC at a time with no
//!   read-ahead, so streaming saves little more than the seek.
//! * **RPC** — each page shipped from server cache to client cache.
//! * **CPU** — per-handle get/unref (§4.3–4.4: the 60-byte Handle that
//!   must be allocated/updated/freed per object; calibrated from the
//!   paper's "about 250 seconds not spent on reads" while scanning the
//!   2 M-patient collection ⇒ ~0.125 ms/object), predicate evaluation,
//!   hash insert/probe, sort compares, result construction (calibrated
//!   from the paper's "1.8 million integers cost ≈ 1100 s" in standard
//!   transaction mode ⇒ ~0.6 ms/element).
//! * **Swap** — page faults charged when an operator's private memory
//!   (a hash table) exceeds the free-RAM budget; a fault writes back a
//!   victim and reads the wanted page (2 × 10 ms).
//!
//! All constants live in [`CostModel`] so ablations and calibration
//! sweeps can vary them; [`CostModel::sparc20`] is the calibrated
//! default used by the figure-regeneration harness.

use std::fmt;

/// Nanoseconds, the clock's unit.
pub type Nanos = u64;

const MS: Nanos = 1_000_000;
const US: Nanos = 1_000;

/// CPU-side events charged through [`SimClock::charge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuEvent {
    /// Allocating a fresh in-memory object representative: the full
    /// 60-byte Handle structure (paper §4.4), initialized and pinned.
    HandleAlloc,
    /// Re-pinning an already-live (or delayed-free) Handle — locating
    /// it and bumping its pin count.
    HandleTouch,
    /// Dropping one pin. Cheap; the expensive part is the eventual
    /// [`CpuEvent::HandleFree`], which O2 delays "as much as possible".
    HandleUnref,
    /// Actually tearing a Handle down (delayed-free pool eviction).
    HandleFree,
    /// Materializing a *literal* handle (string / complex value). The
    /// paper proposes (§4.4) giving literals smaller handles; the
    /// improved mode charges [`CostModel::handle_literal_improved`].
    HandleGetLiteral,
    /// Reading one attribute out of a pinned object.
    AttrGet,
    /// One predicate evaluation / integer comparison.
    Compare,
    /// Inserting one entry into an operator hash table.
    HashInsert,
    /// Probing an operator hash table once.
    HashProbe,
    /// One comparison inside a sort (charged `n log2 n` times).
    SortCompare,
    /// Appending one element to a persistent-capable result collection
    /// (standard transaction mode — the expensive §4.2 path).
    ResultAppendPersistent,
    /// Appending one element to a transient (cursor/stream) result.
    ResultAppendTransient,
    /// One OS page fault on operator memory: write back a victim page
    /// and read the faulted page.
    SwapFault,
}

/// Calibrated per-event costs, in nanoseconds.
///
/// The defaults are the Sparc 20 calibration described in the module
/// docs; every figure in `EXPERIMENTS.md` is produced with
/// [`CostModel::sparc20`]. Ablation benches construct variants.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// A page read that required a disk seek (random access).
    pub read_page_random: Nanos,
    /// A page read that continued a sequential scan of the same file.
    pub read_page_sequential: Nanos,
    /// A page write (writes are rare in the measured queries; loading
    /// charges them heavily).
    pub write_page: Nanos,
    /// Shipping one page from server cache to client cache.
    pub rpc_per_page: Nanos,
    /// Fresh full-object handle allocation (60-byte structure).
    pub handle_alloc: Nanos,
    /// Re-pin of a live or delayed-free handle.
    pub handle_touch: Nanos,
    /// Pin drop.
    pub handle_unref: Nanos,
    /// Deferred teardown of a handle.
    pub handle_free: Nanos,
    /// Literal handle get+unref, legacy mode (same machinery as full
    /// objects — the state of O2 the paper measured).
    pub handle_literal: Nanos,
    /// Literal handle get+unref with the paper's §4.4 "smaller handles
    /// for literals" improvement applied.
    pub handle_literal_improved: Nanos,
    /// When `true`, handle get/unref are charged at the bulk-allocated
    /// rate ([`CostModel::bulk_discount_permille`]) — the §4.4 proposal
    /// of allocating handles for bulks of objects.
    pub bulk_handles: bool,
    /// Per-mille of the normal handle cost charged in bulk mode
    /// (e.g. 250 = one quarter of the per-object cost).
    pub bulk_discount_permille: u32,
    /// Attribute fetch from a pinned object.
    pub attr_get: Nanos,
    /// Predicate evaluation / comparison.
    pub compare: Nanos,
    /// Hash-table insert.
    pub hash_insert: Nanos,
    /// Hash-table probe.
    pub hash_probe: Nanos,
    /// Per-comparison sort cost.
    pub sort_compare: Nanos,
    /// Persistent-capable result append (standard txn mode).
    pub result_append_persistent: Nanos,
    /// Transient result append.
    pub result_append_transient: Nanos,
    /// One swap fault (victim write-back + page read).
    pub swap_fault: Nanos,
    /// Bytes of real memory available to a single operator's private
    /// structures (hash tables) before the OS starts paging. The paper:
    /// 128 MB RAM − 36 MB O2 caches − OS, window manager and the
    /// application itself.
    pub operator_memory_budget: u64,
}

impl CostModel {
    /// The calibrated model for the paper's testbed (Sparc 20, SCSI
    /// disk, Solaris 2.6; see module docs for each constant's
    /// derivation).
    pub fn sparc20() -> Self {
        Self {
            read_page_random: 10 * MS,
            read_page_sequential: 8 * MS,
            write_page: 10 * MS,
            rpc_per_page: 500 * US,
            handle_alloc: 80 * US,
            handle_touch: 5 * US,
            handle_unref: 2 * US,
            handle_free: 45 * US,
            handle_literal: 100 * US,
            handle_literal_improved: 15 * US,
            bulk_handles: false,
            bulk_discount_permille: 250,
            attr_get: 60 * US,
            compare: US,
            hash_insert: 10 * US,
            hash_probe: 5 * US,
            sort_compare: 100, // 0.1 µs — sorting 8-byte rids is tight loop work
            result_append_persistent: 600 * US,
            result_append_transient: 50 * US,
            swap_fault: 20 * MS,
            operator_memory_budget: 32 << 20,
        }
    }

    /// A free model: every event costs zero. Useful in tests that only
    /// care about counters.
    pub fn free() -> Self {
        Self {
            read_page_random: 0,
            read_page_sequential: 0,
            write_page: 0,
            rpc_per_page: 0,
            handle_alloc: 0,
            handle_touch: 0,
            handle_unref: 0,
            handle_free: 0,
            handle_literal: 0,
            handle_literal_improved: 0,
            bulk_handles: false,
            bulk_discount_permille: 1000,
            attr_get: 0,
            compare: 0,
            hash_insert: 0,
            hash_probe: 0,
            sort_compare: 0,
            result_append_persistent: 0,
            result_append_transient: 0,
            swap_fault: 0,
            operator_memory_budget: 32 << 20,
        }
    }

    /// The §4.4 "improved handles" variant: small literal handles and
    /// bulk allocation.
    pub fn sparc20_improved_handles() -> Self {
        let mut m = Self::sparc20();
        m.bulk_handles = true;
        m
    }

    fn bulk(&self, cost: Nanos) -> Nanos {
        if self.bulk_handles {
            cost * self.bulk_discount_permille as u64 / 1000
        } else {
            cost
        }
    }

    /// Cost of one `event` occurrence under this model.
    pub fn cpu_cost(&self, event: CpuEvent) -> Nanos {
        match event {
            CpuEvent::HandleAlloc => self.bulk(self.handle_alloc),
            CpuEvent::HandleTouch => self.handle_touch,
            CpuEvent::HandleUnref => self.handle_unref,
            CpuEvent::HandleFree => self.bulk(self.handle_free),
            CpuEvent::HandleGetLiteral => {
                if self.bulk_handles {
                    self.handle_literal_improved
                } else {
                    self.handle_literal
                }
            }
            CpuEvent::AttrGet => self.attr_get,
            CpuEvent::Compare => self.compare,
            CpuEvent::HashInsert => self.hash_insert,
            CpuEvent::HashProbe => self.hash_probe,
            CpuEvent::SortCompare => self.sort_compare,
            CpuEvent::ResultAppendPersistent => self.result_append_persistent,
            CpuEvent::ResultAppendTransient => self.result_append_transient,
            CpuEvent::SwapFault => self.swap_fault,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sparc20()
    }
}

/// The simulated wall clock.
///
/// Accumulates nanoseconds; also keeps per-category tallies so
/// `EXPLAIN`-style breakdowns (paper Figure 9) can show where the time
/// went.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    elapsed: Nanos,
    io_time: Nanos,
    rpc_time: Nanos,
    cpu_time: Nanos,
    swap_time: Nanos,
    cpu_events: u64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total simulated elapsed nanoseconds.
    pub fn elapsed(&self) -> Nanos {
        self.elapsed
    }

    /// Total simulated elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed as f64 / 1e9
    }

    /// Time attributed to disk I/O.
    pub fn io_time(&self) -> Nanos {
        self.io_time
    }

    /// Time attributed to client↔server page shipping.
    pub fn rpc_time(&self) -> Nanos {
        self.rpc_time
    }

    /// Time attributed to CPU work.
    pub fn cpu_time(&self) -> Nanos {
        self.cpu_time
    }

    /// Time attributed to operator-memory page faults.
    pub fn swap_time(&self) -> Nanos {
        self.swap_time
    }

    /// Number of CPU events charged through [`SimClock::charge`]
    /// (handle traffic, attribute gets, compares, hashing, sorting,
    /// result appends, swap faults). Page reads/writes/RPCs are counted
    /// by `IoStats`, not here. Per-operator breakdowns diff this.
    pub fn cpu_events(&self) -> u64 {
        self.cpu_events
    }

    /// Charges a disk page read; `sequential` selects the streaming
    /// rate.
    pub fn charge_read(&mut self, model: &CostModel, sequential: bool) {
        let cost = if sequential {
            model.read_page_sequential
        } else {
            model.read_page_random
        };
        self.io_time += cost;
        self.elapsed += cost;
    }

    /// Charges a disk page write.
    pub fn charge_write(&mut self, model: &CostModel) {
        self.io_time += model.write_page;
        self.elapsed += model.write_page;
    }

    /// Charges one server→client page RPC.
    pub fn charge_rpc(&mut self, model: &CostModel) {
        self.rpc_time += model.rpc_per_page;
        self.elapsed += model.rpc_per_page;
    }

    /// Charges `count` occurrences of a CPU event.
    pub fn charge(&mut self, model: &CostModel, event: CpuEvent, count: u64) {
        let cost = model.cpu_cost(event) * count;
        if event == CpuEvent::SwapFault {
            self.swap_time += cost;
        } else {
            self.cpu_time += cost;
        }
        self.elapsed += cost;
        self.cpu_events += count;
    }

    /// Difference to an earlier snapshot of the same clock.
    pub fn since(&self, earlier: &SimClock) -> Nanos {
        self.elapsed - earlier.elapsed
    }

    /// Resets all tallies to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}s (io {:.2}s, rpc {:.2}s, cpu {:.2}s, swap {:.2}s)",
            self.elapsed as f64 / 1e9,
            self.io_time as f64 / 1e9,
            self.rpc_time as f64 / 1e9,
            self.cpu_time as f64 / 1e9,
            self.swap_time as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let m = CostModel::sparc20();
        let mut c = SimClock::new();
        c.charge_read(&m, false);
        c.charge_read(&m, true);
        c.charge_rpc(&m);
        c.charge(&m, CpuEvent::HandleAlloc, 10);
        c.charge(&m, CpuEvent::SwapFault, 2);
        assert_eq!(c.io_time(), m.read_page_random + m.read_page_sequential);
        assert_eq!(c.rpc_time(), m.rpc_per_page);
        assert_eq!(c.cpu_time(), 10 * m.handle_alloc);
        assert_eq!(c.swap_time(), 2 * m.swap_fault);
        assert_eq!(
            c.elapsed(),
            c.io_time() + c.rpc_time() + c.cpu_time() + c.swap_time()
        );
    }

    #[test]
    fn cpu_events_count_charges_not_io() {
        let m = CostModel::sparc20();
        let mut c = SimClock::new();
        c.charge_read(&m, false);
        c.charge_rpc(&m);
        assert_eq!(c.cpu_events(), 0, "page traffic is not a CPU event");
        c.charge(&m, CpuEvent::HandleAlloc, 3);
        c.charge(&m, CpuEvent::SwapFault, 2);
        assert_eq!(c.cpu_events(), 5);
        c.reset();
        assert_eq!(c.cpu_events(), 0);
    }

    #[test]
    fn sequential_reads_are_cheaper_than_random() {
        let m = CostModel::sparc20();
        assert!(m.read_page_sequential < m.read_page_random);
    }

    #[test]
    fn paper_scale_sanity_scan_two_million_patients() {
        // Paper §4.2: scanning the 2M-patient collection ≈ 800 s, of
        // which ~250 s is CPU (handles). Our constants should land in
        // that order of magnitude: ~33k sequential pages + 2M handle
        // get/unref pairs.
        let m = CostModel::sparc20();
        let mut c = SimClock::new();
        for _ in 0..33_000 {
            c.charge_read(&m, true);
            c.charge_rpc(&m);
        }
        c.charge(&m, CpuEvent::HandleAlloc, 2_000_000);
        c.charge(&m, CpuEvent::HandleUnref, 2_000_000);
        c.charge(&m, CpuEvent::HandleFree, 2_000_000);
        let secs = c.elapsed_secs();
        assert!(
            (150.0..1500.0).contains(&secs),
            "full scan of 2M patients should take hundreds of simulated seconds, got {secs}"
        );
        // CPU share is substantial, as the paper found.
        assert!(c.cpu_time() as f64 / c.elapsed() as f64 > 0.3);
    }

    #[test]
    fn improved_handles_are_cheaper() {
        let base = CostModel::sparc20();
        let improved = CostModel::sparc20_improved_handles();
        assert!(improved.cpu_cost(CpuEvent::HandleAlloc) < base.cpu_cost(CpuEvent::HandleAlloc));
        assert!(improved.cpu_cost(CpuEvent::HandleFree) < base.cpu_cost(CpuEvent::HandleFree));
        assert!(
            improved.cpu_cost(CpuEvent::HandleGetLiteral)
                < base.cpu_cost(CpuEvent::HandleGetLiteral)
        );
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        let mut c = SimClock::new();
        c.charge_read(&m, false);
        c.charge(&m, CpuEvent::ResultAppendPersistent, 1_000_000);
        assert_eq!(c.elapsed(), 0);
    }

    #[test]
    fn clock_since_and_reset() {
        let m = CostModel::sparc20();
        let mut c = SimClock::new();
        c.charge_read(&m, false);
        let snap = c.clone();
        c.charge_read(&m, false);
        assert_eq!(c.since(&snap), m.read_page_random);
        c.reset();
        assert_eq!(c.elapsed(), 0);
    }
}
