//! The client → server → disk storage stack.
//!
//! Reproduces the paper's measurement environment (§2): O2 ran client
//! and server on one machine with a 32 MB client cache and a 4 MB
//! server cache; every measured query started *cold* (server shut down
//! between runs). A page access therefore resolves as:
//!
//! 1. **client cache hit** — free (the object is already in the
//!    application's address space);
//! 2. **client miss, server hit** — one RPC ships the page
//!    (`SC2CCreadpages` aka `RPCsnumber`);
//! 3. **both miss** — one physical disk read (`D2SCreadpages`) *and*
//!    one RPC.
//!
//! Disk reads are charged at the sequential rate when they continue the
//! previous disk read (same file, next page) — cache hits do not move
//! the simulated disk arm.
//!
//! Writes go to the client cache and are made durable by
//! [`StorageStack::commit`], which charges one page write per dirty
//! page (plus one log write per dirty page unless running in the
//! paper's transaction-off loading mode). This is what makes the §3.2
//! loading-pitfall experiment (commit batch size, logging on/off)
//! reproducible.

use crate::cache::LruCache;
use crate::cost::{CostModel, CpuEvent, SimClock};
use crate::disk::{Disk, FileId};
use crate::page::{PageId, SlottedPage};
use tq_fasthash::FxHashSet;

/// Capacities of the two cache tiers, in pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Client cache capacity (paper default: 32 MB = 8192 pages).
    pub client_pages: usize,
    /// Server cache capacity (paper default: 4 MB = 1024 pages).
    pub server_pages: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            client_pages: 8192,
            server_pages: 1024,
        }
    }
}

impl CacheConfig {
    /// The paper's default 32 MB / 4 MB split.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The out-of-the-box O2 configuration the authors started from
    /// (§3.2): 4 MB for both caches.
    pub fn o2_factory_default() -> Self {
        Self {
            client_pages: 1024,
            server_pages: 1024,
        }
    }
}

/// The raw counters behind the paper's Figure 3 `Stat` class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from disk into the server cache (`D2SCreadpages`).
    pub d2sc_read_pages: u64,
    /// Pages shipped from server cache to client cache — one per RPC
    /// (`SC2CCreadpages` / `RPCsnumber`).
    pub sc2cc_read_pages: u64,
    /// Client-cache lookups that hit.
    pub client_hits: u64,
    /// Client-cache lookups that missed (`CCPagefaults`).
    pub client_misses: u64,
    /// Server-cache lookups that hit (only performed on client misses).
    pub server_hits: u64,
    /// Server-cache lookups that missed.
    pub server_misses: u64,
    /// Pages written to disk (commits, flushes, relocations).
    pub pages_written: u64,
    /// Log pages written (zero in transaction-off mode).
    pub log_pages_written: u64,
}

impl IoStats {
    /// Client-cache miss rate in percent, the paper's `CCMissrate`.
    pub fn client_miss_rate(&self) -> f64 {
        percent(self.client_misses, self.client_hits + self.client_misses)
    }

    /// Server-cache miss rate in percent, the paper's `SCMissrate`.
    pub fn server_miss_rate(&self) -> f64 {
        percent(self.server_misses, self.server_hits + self.server_misses)
    }

    /// Total bytes shipped client-ward, the paper's `RPCstotalsize`.
    pub fn rpc_total_bytes(&self) -> u64 {
        self.sc2cc_read_pages * crate::page::PAGE_SIZE as u64
    }

    /// Component-wise sum — folds another window (e.g. a morsel
    /// worker's [`delta_since`](Self::delta_since)) into this one.
    pub fn accumulate(&mut self, other: &IoStats) {
        self.d2sc_read_pages += other.d2sc_read_pages;
        self.sc2cc_read_pages += other.sc2cc_read_pages;
        self.client_hits += other.client_hits;
        self.client_misses += other.client_misses;
        self.server_hits += other.server_hits;
        self.server_misses += other.server_misses;
        self.pages_written += other.pages_written;
        self.log_pages_written += other.log_pages_written;
    }

    /// Component-wise difference (`self` must be the later snapshot).
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            d2sc_read_pages: self.d2sc_read_pages - earlier.d2sc_read_pages,
            sc2cc_read_pages: self.sc2cc_read_pages - earlier.sc2cc_read_pages,
            client_hits: self.client_hits - earlier.client_hits,
            client_misses: self.client_misses - earlier.client_misses,
            server_hits: self.server_hits - earlier.server_hits,
            server_misses: self.server_misses - earlier.server_misses,
            pages_written: self.pages_written - earlier.pages_written,
            log_pages_written: self.log_pages_written - earlier.log_pages_written,
        }
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// The full storage stack: disk, server cache, client cache, dirty-page
/// tracking, clock and counters.
///
/// `Clone` produces an independent simulated machine — the figure
/// harness clones one loaded stack per measurement cell so cells can
/// run on worker threads without sharing state.
#[derive(Clone)]
pub struct StorageStack {
    disk: Disk,
    client: LruCache<PageId>,
    server: LruCache<PageId>,
    dirty: FxHashSet<PageId>,
    stats: IoStats,
    clock: SimClock,
    model: CostModel,
    config: CacheConfig,
    last_disk_read: Option<PageId>,
    /// When `true`, commits skip the log (the paper's bulk-loading
    /// transaction-off mode, §3.2).
    pub logging_enabled: bool,
}

impl StorageStack {
    /// Builds a stack over an empty disk.
    pub fn new(model: CostModel, config: CacheConfig) -> Self {
        Self {
            disk: Disk::new(),
            client: LruCache::new(config.client_pages),
            server: LruCache::new(config.server_pages),
            dirty: FxHashSet::default(),
            stats: IoStats::default(),
            clock: SimClock::new(),
            model,
            config,
            last_disk_read: None,
            logging_enabled: true,
        }
    }

    /// A stack with the paper's calibrated model and default caches.
    pub fn paper_default() -> Self {
        Self::new(CostModel::sparc20(), CacheConfig::paper_default())
    }

    /// The cache configuration in force.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Replaces the cost model (ablation benches).
    pub fn set_model(&mut self, model: CostModel) {
        self.model = model;
    }

    /// Underlying disk (counter access, debug).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Creates a new file.
    pub fn create_file(&mut self, name: impl Into<String>) -> FileId {
        self.disk.create_file(name)
    }

    /// Appends a fresh page to `file`. The new page is born resident in
    /// the client cache and dirty (it exists nowhere else yet), so no
    /// read I/O is charged.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        let pid = self.disk.allocate_page(file);
        self.admit_client(pid);
        self.server.insert(pid);
        self.dirty.insert(pid);
        pid
    }

    fn admit_client(&mut self, pid: PageId) {
        if let Some(evicted) = self.client.insert(pid) {
            // Evicting a dirty page forces a write-back through the
            // server to disk. The page's bytes were already mutated in
            // place, so only the write is recorded — materializing the
            // page here would defeat copy-on-write sharing.
            if self.dirty.remove(&evicted) {
                self.disk.record_write(evicted);
                self.stats.pages_written += 1;
                self.clock.charge_write(&self.model);
            }
        }
    }

    /// Ensures `pid` is resident in the client cache, charging RPC and
    /// disk time as needed.
    fn fault_in(&mut self, pid: PageId) {
        if self.client.touch(pid) {
            self.stats.client_hits += 1;
            return;
        }
        self.stats.client_misses += 1;
        if self.server.touch(pid) {
            self.stats.server_hits += 1;
        } else {
            self.stats.server_misses += 1;
            let sequential = match self.last_disk_read {
                Some(last) => last.file == pid.file && pid.page_no == last.page_no.wrapping_add(1),
                None => false,
            };
            self.clock.charge_read(&self.model, sequential);
            let _ = self.disk.read(pid); // keep the disk's own counter in sync
            self.stats.d2sc_read_pages += 1;
            self.last_disk_read = Some(pid);
            self.server.insert(pid);
        }
        // Ship server → client.
        self.clock.charge_rpc(&self.model);
        self.stats.sc2cc_read_pages += 1;
        self.admit_client(pid);
    }

    /// Reads a page through the cache hierarchy.
    pub fn read_page(&mut self, pid: PageId) -> &SlottedPage {
        self.fault_in(pid);
        self.disk.peek(pid)
    }

    /// Mutates a page through the cache hierarchy; the page becomes
    /// dirty and is made durable at the next [`StorageStack::commit`].
    pub fn write_page<R>(&mut self, pid: PageId, f: impl FnOnce(&mut SlottedPage) -> R) -> R {
        self.fault_in(pid);
        self.dirty.insert(pid);
        f(self.disk.peek_mut(pid))
    }

    /// Number of dirty (uncommitted) pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Flushes all dirty pages: one page write each, plus one log page
    /// write each when logging is enabled.
    pub fn commit(&mut self) {
        let n = self.dirty.len() as u64;
        for pid in self.dirty.iter() {
            self.disk.record_write(*pid); // count the physical write
            self.clock.charge_write(&self.model);
        }
        self.stats.pages_written += n;
        if self.logging_enabled {
            for _ in 0..n {
                self.clock.charge_write(&self.model);
            }
            self.stats.log_pages_written += n;
        }
        self.dirty.clear();
    }

    /// Truncates a temporary (spill) file: its pages vanish without
    /// write-back, and all cached residency for them is purged so a
    /// reused page number can never produce a stale hit.
    ///
    /// Only for files written through [`StorageStack::allocate_page`]
    /// directly (spill/sort runs). Truncating a file an
    /// `ObjectStore` appends records to would leave its tail-page
    /// bookkeeping pointing past the end of the file.
    pub fn truncate_file(&mut self, file: FileId) {
        let len = self.disk.file_len(file);
        let dropped = self.disk.truncate_file(file);
        debug_assert_eq!(len, dropped);
        for page_no in 0..len {
            let pid = PageId { file, page_no };
            self.client.remove(&pid);
            self.server.remove(&pid);
            self.dirty.remove(&pid);
        }
        if let Some(last) = self.last_disk_read {
            if last.file == file {
                self.last_disk_read = None;
            }
        }
    }

    /// Simulates the paper's cold start: commit outstanding work, then
    /// drop both caches and forget the disk-arm position. Counters and
    /// clock are *not* reset — use [`StorageStack::reset_metrics`].
    pub fn cold_restart(&mut self) {
        self.commit();
        self.client.clear();
        self.server.clear();
        self.last_disk_read = None;
    }

    /// Zeroes the clock and counters (typically right after a
    /// [`StorageStack::cold_restart`], before a measured run).
    pub fn reset_metrics(&mut self) {
        self.stats = IoStats::default();
        self.clock.reset();
    }

    /// Pages on which this stack's disk diverged from `base`'s — the
    /// transaction write-set for MVCC commit validation. Callers
    /// should [`StorageStack::commit`] first so the dirty list and the
    /// copy-on-write state agree.
    pub fn write_set_since(&self, base: &StorageStack) -> crate::writeset::WriteSet {
        self.disk.write_set_since(&base.disk)
    }

    /// True when no page diverged from `base`'s disk and nothing is
    /// dirty — a read-only session that can safely re-pin a newer
    /// base epoch.
    pub fn is_unchanged_since(&self, base: &StorageStack) -> bool {
        self.dirty.is_empty() && self.disk.is_unchanged_since(&base.disk)
    }

    /// Adopts one file wholesale from `src` (see
    /// [`Disk::adopt_file_from`]), purging any cached residency and
    /// dirty marks this stack held for the file so a stale page can
    /// never surface as a hit.
    pub fn adopt_file_from(&mut self, src: &StorageStack, file: FileId) {
        let before = if file.0 < self.disk.file_count() {
            self.disk.file_len(file)
        } else {
            0
        };
        self.disk.adopt_file_from(&src.disk, file);
        let span = before.max(self.disk.file_len(file));
        for page_no in 0..span {
            let pid = PageId { file, page_no };
            self.client.remove(&pid);
            self.server.remove(&pid);
            self.dirty.remove(&pid);
        }
        if let Some(last) = self.last_disk_read {
            if last.file == file {
                self.last_disk_read = None;
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Charges `count` CPU events to the clock.
    pub fn charge(&mut self, event: CpuEvent, count: u64) {
        self.clock.charge(&self.model, event, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn tiny_stack(client: usize, server: usize) -> StorageStack {
        StorageStack::new(
            CostModel::sparc20(),
            CacheConfig {
                client_pages: client,
                server_pages: server,
            },
        )
    }

    /// Builds a file of `n` pages, each holding one marker record, and
    /// returns (stack, pids) with cold caches and clean metrics.
    fn stack_with_pages(n: u32, client: usize, server: usize) -> (StorageStack, Vec<PageId>) {
        let mut s = tiny_stack(client, server);
        let f = s.create_file("data");
        let pids: Vec<PageId> = (0..n)
            .map(|i| {
                let pid = s.allocate_page(f);
                s.write_page(pid, |p| {
                    p.insert(&[i as u8], PAGE_SIZE).unwrap();
                });
                pid
            })
            .collect();
        s.cold_restart();
        s.reset_metrics();
        (s, pids)
    }

    #[test]
    fn cold_read_charges_disk_and_rpc() {
        let (mut s, pids) = stack_with_pages(1, 8, 8);
        s.read_page(pids[0]);
        let st = s.stats();
        assert_eq!(st.client_misses, 1);
        assert_eq!(st.server_misses, 1);
        assert_eq!(st.d2sc_read_pages, 1);
        assert_eq!(st.sc2cc_read_pages, 1);
        assert_eq!(
            s.clock().elapsed(),
            s.model().read_page_random + s.model().rpc_per_page
        );
    }

    #[test]
    fn warm_read_is_free() {
        let (mut s, pids) = stack_with_pages(1, 8, 8);
        s.read_page(pids[0]);
        let t = s.clock().elapsed();
        s.read_page(pids[0]);
        assert_eq!(s.stats().client_hits, 1);
        assert_eq!(s.clock().elapsed(), t, "client-cache hit charges nothing");
    }

    #[test]
    fn server_hit_charges_only_rpc() {
        // Client of 1 page, server of 8: reading A, then B, then A again
        // evicts A from the client but finds it in the server.
        let (mut s, pids) = stack_with_pages(2, 1, 8);
        s.read_page(pids[0]);
        s.read_page(pids[1]);
        let before = s.clock().elapsed();
        let reads_before = s.stats().d2sc_read_pages;
        s.read_page(pids[0]);
        let st = s.stats();
        assert_eq!(st.d2sc_read_pages, reads_before, "no new disk read");
        assert_eq!(st.server_hits, 1);
        assert_eq!(s.clock().elapsed() - before, s.model().rpc_per_page);
    }

    #[test]
    fn sequential_scan_charges_streaming_rate() {
        let (mut s, pids) = stack_with_pages(10, 32, 4);
        for pid in &pids {
            s.read_page(*pid);
        }
        // First read random, nine sequential.
        let expected = s.model().read_page_random
            + 9 * s.model().read_page_sequential
            + 10 * s.model().rpc_per_page;
        assert_eq!(s.clock().elapsed(), expected);
    }

    #[test]
    fn cache_hits_do_not_break_sequentiality() {
        let (mut s, pids) = stack_with_pages(4, 32, 8);
        s.read_page(pids[0]);
        s.read_page(pids[0]); // hit — disk arm unmoved
        s.read_page(pids[1]); // still sequential
        let expected = s.model().read_page_random
            + s.model().read_page_sequential
            + 2 * s.model().rpc_per_page;
        assert_eq!(s.clock().elapsed(), expected);
    }

    #[test]
    fn random_order_charges_seek_rate() {
        let (mut s, pids) = stack_with_pages(10, 32, 4);
        // 0, 5, 2, 9: no two consecutive.
        for &i in &[0usize, 5, 2, 9] {
            s.read_page(pids[i]);
        }
        let expected = 4 * s.model().read_page_random + 4 * s.model().rpc_per_page;
        assert_eq!(s.clock().elapsed(), expected);
    }

    #[test]
    fn commit_writes_dirty_pages_once_plus_log() {
        let (mut s, pids) = stack_with_pages(3, 32, 8);
        for pid in &pids {
            s.write_page(*pid, |p| {
                p.insert(b"x", PAGE_SIZE).unwrap();
            });
        }
        // Double-write the same page: still one flush.
        s.write_page(pids[0], |p| {
            p.insert(b"y", PAGE_SIZE).unwrap();
        });
        assert_eq!(s.dirty_pages(), 3);
        let st0 = s.stats();
        s.commit();
        let d = s.stats().delta_since(&st0);
        assert_eq!(d.pages_written, 3);
        assert_eq!(d.log_pages_written, 3);
        assert_eq!(s.dirty_pages(), 0);
    }

    #[test]
    fn transaction_off_mode_skips_log() {
        let (mut s, pids) = stack_with_pages(2, 32, 8);
        s.logging_enabled = false;
        s.write_page(pids[0], |p| {
            p.insert(b"x", PAGE_SIZE).unwrap();
        });
        s.commit();
        assert_eq!(s.stats().log_pages_written, 0);
        assert_eq!(s.stats().pages_written, 1);
    }

    #[test]
    fn dirty_eviction_forces_writeback() {
        let mut s = tiny_stack(1, 8);
        let f = s.create_file("x");
        let a = s.allocate_page(f);
        s.write_page(a, |p| {
            p.insert(b"a", PAGE_SIZE).unwrap();
        });
        let writes_before = s.stats().pages_written;
        // Allocating a second page into a 1-page client cache evicts
        // dirty `a`.
        let _b = s.allocate_page(f);
        assert_eq!(s.stats().pages_written, writes_before + 1);
    }

    #[test]
    fn cold_restart_forgets_residency() {
        let (mut s, pids) = stack_with_pages(1, 8, 8);
        s.read_page(pids[0]);
        s.cold_restart();
        s.reset_metrics();
        s.read_page(pids[0]);
        assert_eq!(
            s.stats().d2sc_read_pages,
            1,
            "cold read hits the disk again"
        );
    }

    #[test]
    fn truncate_purges_pages_and_residency() {
        let (mut s, pids) = stack_with_pages(3, 8, 8);
        s.read_page(pids[0]);
        let file = pids[0].file;
        s.truncate_file(file);
        assert_eq!(s.disk().file_len(file), 0);
        // Re-allocating page 0 must not hit stale cache state.
        let pid = s.allocate_page(file);
        assert_eq!(pid.page_no, 0);
        s.write_page(pid, |p| {
            p.insert(b"fresh", PAGE_SIZE).unwrap();
        });
        s.cold_restart();
        s.reset_metrics();
        let got = s.read_page(pid).read(0).unwrap().to_vec();
        assert_eq!(got, b"fresh");
        assert_eq!(s.stats().d2sc_read_pages, 1, "stale residency purged");
    }

    #[test]
    fn miss_rates_match_paper_definition() {
        let (mut s, pids) = stack_with_pages(2, 1, 8);
        s.read_page(pids[0]); // miss
        s.read_page(pids[1]); // miss, evicts 0 from client
        s.read_page(pids[1]); // hit
        let st = s.stats();
        assert!((st.client_miss_rate() - 66.666).abs() < 0.01);
        assert_eq!(st.rpc_total_bytes(), 2 * PAGE_SIZE as u64);
    }
}
