//! End-to-end tests through the `treequery` facade: OQL text in,
//! measured results out, across physical organizations.

use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::oql::{compile_str, CompiledQuery};
use treequery::query::{index_scan, seq_scan, sorted_index_scan, JoinAlgo, ResultMode};
use treequery::workload::{build, BuildConfig, Database, DbShape, Organization};

fn db(org: Organization) -> Database {
    build(&BuildConfig::scaled(DbShape::Db2, org, 1000))
}

fn run_compiled_join(db: &mut Database, algo: JoinAlgo, text: &str) -> Vec<(i64, i64)> {
    let CompiledQuery::TreeJoin(mut spec) = compile_str(&db.store, text).expect("compiles") else {
        panic!("expected a join");
    };
    spec.result_mode = ResultMode::Transient;
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    let (report, _) = db.measure_cold(move |db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &spec, &JoinOptions::default(), true)
    });
    let mut pairs = report.pairs.unwrap();
    pairs.sort_unstable();
    pairs
}

/// The same OQL query returns the same answer in every physical
/// organization — "three physical representation of the same
/// databases".
#[test]
fn answers_are_organization_invariant() {
    let mut reference: Option<Vec<(i64, i64)>> = None;
    for org in Organization::all() {
        let mut d = db(org);
        let k1 = d.patient_selectivity_key(30);
        let k2 = d.provider_selectivity_key(70);
        let text = format!(
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where pa.mrn < {k1} and p.upin < {k2}"
        );
        let pairs = run_compiled_join(&mut d, JoinAlgo::Phj, &text);
        match &reference {
            None => reference = Some(pairs),
            Some(r) => assert_eq!(r, &pairs, "answers differ under {org:?}"),
        }
    }
}

/// OQL selections agree across all three access paths and with a
/// direct predicate count.
#[test]
fn selection_paths_agree_via_oql() {
    let mut d = db(Organization::ClassClustered);
    let k = d.patient_count as i64 / 3;
    let text = format!("select pa.age from pa in Patients where pa.num < {k}");
    let CompiledQuery::Selection(sel) = compile_str(&d.store, &text).unwrap() else {
        panic!("expected a selection");
    };
    let idx = d.idx_patient_num.clone();
    let (a, _) = d.measure_cold(|d| seq_scan(&mut d.store, &sel, true));
    let (b, _) = d.measure_cold(|d| index_scan(&mut d.store, &idx, &sel, true));
    let (c, _) = d.measure_cold(|d| sorted_index_scan(&mut d.store, &idx, &sel, true));
    let norm = |mut v: Vec<i64>| {
        v.sort_unstable();
        v
    };
    let (av, bv, cv) = (
        norm(a.values.unwrap()),
        norm(b.values.unwrap()),
        norm(c.values.unwrap()),
    );
    assert_eq!(av, bv);
    assert_eq!(bv, cv);
    // num is uniform in 0..patient_count, so ~1/3 of patients qualify.
    let frac = av.len() as f64 / d.patient_count as f64;
    assert!(
        (0.28..0.39).contains(&frac),
        "selectivity came out at {frac}"
    );
}

/// A warm re-run is cheaper than the cold run (the caches work), and a
/// cold restart restores the cold cost.
#[test]
fn cold_vs_warm_measurement_protocol() {
    // Small data, paper-sized caches: the warm working set fits.
    let mut cfg = BuildConfig::scaled(DbShape::Db2, Organization::ClassClustered, 1000);
    cfg.cache = treequery::pagestore::CacheConfig::paper_default();
    let mut d = build(&cfg);
    let k = d.patient_count as i64 / 2;
    let text = format!("select pa.age from pa in Patients where pa.mrn < {k}");
    let CompiledQuery::Selection(sel) = compile_str(&d.store, &text).unwrap() else {
        panic!("expected a selection");
    };
    // Cold.
    let (_, cold_secs) = d.measure_cold(|d| seq_scan(&mut d.store, &sel, false));
    // Warm: run again without restarting the server.
    d.store.reset_metrics();
    seq_scan(&mut d.store, &sel, false);
    d.store.end_of_query();
    let warm_secs = d.store.clock().elapsed_secs();
    // The warm run saves all the I/O — but only the I/O: handle CPU
    // dominates scans (the paper's §4 point), so the saving is real
    // yet bounded.
    assert!(
        warm_secs < 0.95 * cold_secs,
        "warm {warm_secs:.2}s vs cold {cold_secs:.2}s"
    );
    assert_eq!(
        d.store.stats().d2sc_read_pages,
        0,
        "warm run hits the cache"
    );
    // Cold again.
    let (_, cold2) = d.measure_cold(|d| seq_scan(&mut d.store, &sel, false));
    assert!((cold2 - cold_secs).abs() < cold_secs * 0.05);
}

/// Figure-3 counter sanity on a measured run: every client miss is an
/// RPC; cold disk reads equal server misses.
#[test]
fn figure3_counters_are_consistent() {
    let mut d = db(Organization::ClassClustered);
    let k1 = d.patient_selectivity_key(50);
    let k2 = d.provider_selectivity_key(50);
    let text = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {k1} and p.upin < {k2}"
    );
    run_compiled_join(&mut d, JoinAlgo::Nojoin, &text);
    let s = d.store.stats();
    assert_eq!(
        s.client_misses, s.sc2cc_read_pages,
        "one RPC per client miss"
    );
    assert_eq!(
        s.server_misses, s.d2sc_read_pages,
        "one disk read per server miss"
    );
    assert!(s.client_hits > 0);
    assert!(s.rpc_total_bytes() == s.sc2cc_read_pages * 4096);
    assert!(s.client_miss_rate() > 0.0 && s.client_miss_rate() <= 100.0);
}

/// The whole pipeline rejects bad OQL with useful errors.
#[test]
fn oql_errors_are_reported() {
    let d = db(Organization::ClassClustered);
    for (text, needle) in [
        (
            "select pa.age from pa in Nobody where pa.mrn < 1",
            "unknown collection",
        ),
        (
            "select pa.age from pa in Patients where pa.wrong < 1",
            "no attribute",
        ),
        ("select pa.age from pa into Patients", "keyword `in`"),
    ] {
        let err = compile_str(&d.store, text).unwrap_err().to_string();
        assert!(err.contains(needle), "{text}: {err}");
    }
}
