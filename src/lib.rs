//! Facade crate re-exporting the treequery workspace.
pub use tq_index as index;
pub use tq_objstore as objstore;
pub use tq_pagestore as pagestore;
pub use tq_query as query;
pub use tq_statsdb as statsdb;
pub use tq_workload as workload;
