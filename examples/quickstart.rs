//! Quickstart: build a (scaled) paper database, run OQL, read the
//! Figure 3 counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use treequery::query::engine::{Engine, QueryOutcome};
use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::oql::{compile_str, CompiledQuery};
use treequery::query::planner::Strategy;
use treequery::query::{seq_scan, JoinAlgo, ResultMode};
use treequery::workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn main() {
    // 1. Build the paper's 1:3 database (1M providers at full scale;
    //    1/500 here keeps the example instant), class-clustered.
    let cfg = BuildConfig::scaled(DbShape::Db2, Organization::ClassClustered, 500);
    let mut db = build(&cfg);
    println!(
        "built {} providers / {} patients in {} pages",
        db.provider_count,
        db.patient_count,
        db.store.stack().disk().total_pages()
    );

    // 2. Compile an OQL selection and run it.
    let k = db.patient_count as i64 / 2;
    let text = format!("select pa.age from pa in Patients where pa.mrn < {k}");
    let Ok(CompiledQuery::Selection(sel)) = compile_str(&db.store, &text) else {
        panic!("selection expected");
    };
    let (report, secs) = db.measure_cold(|db| seq_scan(&mut db.store, &sel, false));
    println!(
        "\n{text}\n  -> {} of {} patients in {:.2} simulated seconds",
        report.selected, report.scanned, secs
    );
    let stats = db.store.stats();
    println!(
        "  Figure-3 counters: D2SCreadpages={} RPCs={} CCMissrate={:.1}%",
        stats.d2sc_read_pages,
        stats.sc2cc_read_pages,
        stats.client_miss_rate()
    );

    // 3. Compile the paper's tree join and run it with two algorithms.
    let k1 = db.patient_selectivity_key(10);
    let k2 = db.provider_selectivity_key(90);
    let text = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {k1} and p.upin < {k2}"
    );
    let Ok(CompiledQuery::TreeJoin(mut spec)) = compile_str(&db.store, &text) else {
        panic!("tree join expected");
    };
    spec.result_mode = ResultMode::Transient;
    println!("\n{text}");
    for algo in [JoinAlgo::Nl, JoinAlgo::Phj] {
        let parent_index = db.idx_provider_upin.clone();
        let child_index = db.idx_patient_mrn.clone();
        let spec = spec.clone();
        let (report, secs) = db.measure_cold(move |db| {
            let mut ctx = JoinContext {
                store: &mut db.store,
                parent_index: &parent_index,
                child_index: &child_index,
            };
            run_join(algo, &mut ctx, &spec, &JoinOptions::default(), false)
        });
        println!(
            "  {:<6} -> {} tuples in {:>8.2} simulated seconds",
            algo.label(),
            report.results,
            secs
        );
    }
    println!("\n(hash joins beat navigation here — the paper's Figure 12.)");

    // 4. Or let the engine do all of it: register the indexes once and
    //    hand it OQL text — it derives the physical profile, estimates
    //    selectivities, picks the plan, and runs cold.
    let derby = db.derby.clone();
    let (upin_idx, mrn_idx, num_idx) = (
        db.idx_provider_upin.clone(),
        db.idx_patient_mrn.clone(),
        db.idx_patient_num.clone(),
    );
    let mut engine = Engine::new(db.store);
    engine.register_index(upin_idx, derby.provider, provider_attr::UPIN);
    engine.register_index(mrn_idx, derby.patient, patient_attr::MRN);
    engine.register_index(num_idx, derby.patient, patient_attr::NUM);
    let q = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {k1} and p.upin < {k2}"
    );
    match engine.run(&q, Strategy::CostBased).expect("plans and runs") {
        QueryOutcome::Join { algo, report, secs } => println!(
            "\nengine chose {} -> {} tuples in {secs:.2} simulated seconds",
            algo.label(),
            report.results
        ),
        other => panic!("expected a join, got {other:?}"),
    }
}
