//! §3.3, practiced: "Large Benchmark Equals Many Numbers: Why Not Use
//! a Database?"
//!
//! Runs a small sweep, stores every run in the Figure 3 stats
//! database, then answers questions by *querying the results* and
//! exports gnuplot/CSV data — the authors' own workflow after they
//! stopped grepping loose files.
//!
//! ```sh
//! cargo run --release --example benchmarkers_notebook
//! ```

use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::{ExecTrace, JoinAlgo, ResultMode, TreeJoinSpec};
use treequery::statsdb::export::{to_csv, to_gnuplot};
use treequery::statsdb::{ExtentDesc, Filter, OperatorStat, QueryDesc, Stat, StatsDb, SystemDesc};
use treequery::workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

/// The executor's per-operator trace, flattened into §3.3 rows.
fn operator_rows(trace: &ExecTrace) -> Vec<OperatorStat> {
    trace
        .ops
        .iter()
        .map(|op| OperatorStat {
            op: op.kind.to_string(),
            label: op.label.clone(),
            depth: op.depth,
            d2sc_read_pages: op.counters.io.d2sc_read_pages,
            sc2cc_read_pages: op.counters.io.sc2cc_read_pages,
            client_misses: op.counters.io.client_misses,
            handle_gets: op.counters.handle_gets(),
            handle_frees: op.counters.handle_frees,
            cpu_events: op.counters.cpu_events,
            io_nanos: op.counters.io_nanos,
            rpc_nanos: op.counters.rpc_nanos,
            cpu_nanos: op.counters.cpu_nanos,
            swap_nanos: op.counters.swap_nanos,
        })
        .collect()
}

fn main() {
    let mut stats = StatsDb::new();
    // Sweep: two organizations x four algorithms x three selectivities.
    for org in [Organization::ClassClustered, Organization::Composition] {
        let mut db = build(&BuildConfig::scaled(DbShape::Db2, org, 500));
        for pat in [10u32, 50, 90] {
            let spec = TreeJoinSpec {
                parents: "Providers".into(),
                children: "Patients".into(),
                parent_key: provider_attr::UPIN,
                parent_set: provider_attr::CLIENTS,
                child_key: patient_attr::MRN,
                child_parent: patient_attr::PCP,
                parent_project: provider_attr::NAME,
                child_project: patient_attr::AGE,
                parent_key_limit: db.provider_selectivity_key(50),
                child_key_limit: db.patient_selectivity_key(pat),
                result_mode: ResultMode::Transient,
            };
            for algo in JoinAlgo::all() {
                let parent_index = db.idx_provider_upin.clone();
                let child_index = db.idx_patient_mrn.clone();
                let s = spec.clone();
                let (report, secs) = db.measure_cold(move |db| {
                    let mut ctx = JoinContext {
                        store: &mut db.store,
                        parent_index: &parent_index,
                        child_index: &child_index,
                    };
                    run_join(algo, &mut ctx, &s, &JoinOptions::default(), false)
                });
                let io = db.store.stats();
                stats.insert(Stat {
                    numtest: 0,
                    query: QueryDesc {
                        cold: true,
                        projection_type: "[p.name, pa.age]".into(),
                        selectivities: vec![("Patient".into(), pat), ("Provider".into(), 50)],
                        text: "select f(p,pa) from p in Providers, pa in p.clients ...".into(),
                    },
                    database: vec![ExtentDesc {
                        classname: "Provider".into(),
                        size: db.provider_count,
                        associations: vec![("Patient".into(), 3)],
                    }],
                    cluster: org.label().into(),
                    algo: algo.label().into(),
                    system: SystemDesc::paper_default(),
                    cc_pagefaults: io.client_misses,
                    cc_lookups: io.client_hits + io.client_misses,
                    elapsed_time: secs,
                    rpcs_number: io.sc2cc_read_pages,
                    rpcs_total_mb: io.rpc_total_bytes() as f64 / 1e6,
                    d2sc_read_pages: io.d2sc_read_pages,
                    sc2cc_read_pages: io.sc2cc_read_pages,
                    cc_miss_rate: io.client_miss_rate(),
                    sc_miss_rate: io.server_miss_rate(),
                    operators: operator_rows(&report.trace),
                });
            }
        }
    }
    println!(
        "stored {} experiments; now ask the database:\n",
        stats.len()
    );

    // Q1: who wins under each organization at 50% patient selectivity?
    for cluster in ["class", "composition"] {
        let w = stats
            .winner(&Filter::any().cluster(cluster).selectivity("Patient", 50))
            .expect("runs exist");
        println!(
            "  fastest under {cluster:<12}: {:<6} at {:.2}s",
            w.algo, w.elapsed_time
        );
    }

    // Q2: how does NL degrade with patient selectivity under class
    // clustering? (a gnuplot series, straight from the database)
    let nl_runs = stats.select(&Filter::any().algo("NL").cluster("class"));
    println!("\n  gnuplot data (NL, class cluster):");
    let dat = to_gnuplot(
        nl_runs,
        |s| s.algo.clone(),
        |s| s.query.selectivity_on("Patient").unwrap_or(0) as f64,
    );
    for line in dat.lines().take(5) {
        println!("    {line}");
    }

    // Q3: everything, as CSV (first three lines).
    println!("\n  CSV export:");
    for line in to_csv(stats.all()).lines().take(3) {
        println!("    {line}");
    }
    println!("    ... ({} rows)", stats.len());
}
