//! The paper's central question, live: navigation or join?
//!
//! Runs the §5 query over the clinic tree (providers and their
//! patients) under all three physical organizations and prints who
//! wins where — a miniature Figure 15.
//!
//! ```sh
//! cargo run --release --example clinic_navigation
//! ```

use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::{JoinAlgo, ResultMode, TreeJoinSpec};
use treequery::workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn spec(db: &treequery::workload::Database, pat: u32, prov: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov),
        child_key_limit: db.patient_selectivity_key(pat),
        result_mode: ResultMode::Transient,
    }
}

fn main() {
    println!("navigation vs joins on the 1:3 clinic database (scale 1/200)\n");
    for org in Organization::all() {
        let mut db = build(&BuildConfig::scaled(DbShape::Db2, org, 200));
        println!("physical organization: {}", org.label());
        for (pat, prov) in [(10u32, 10u32), (90, 90)] {
            let s = spec(&db, pat, prov);
            let mut times: Vec<(JoinAlgo, f64)> = JoinAlgo::all()
                .into_iter()
                .map(|algo| {
                    let parent_index = db.idx_provider_upin.clone();
                    let child_index = db.idx_patient_mrn.clone();
                    let s = s.clone();
                    let (_, secs) = db.measure_cold(move |db| {
                        let mut ctx = JoinContext {
                            store: &mut db.store,
                            parent_index: &parent_index,
                            child_index: &child_index,
                        };
                        run_join(algo, &mut ctx, &s, &JoinOptions::default(), false)
                    });
                    (algo, secs)
                })
                .collect();
            times.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = times[0].1;
            print!("  sel (pat {pat:>2}%, prov {prov:>2}%):");
            for (algo, secs) in &times {
                print!("  {}={:.1}s ({:.2}x)", algo.label(), secs, secs / best);
            }
            println!();
        }
        println!();
    }
    println!("the paper's truth: hash joins rule class clustering, navigation");
    println!("rules composition clustering, and big hash tables swap at 90/90.");
}
