//! The optimizer the authors wanted to build, touring its decisions.
//!
//! Compares the heuristic strategy (what O2 shipped) against the
//! cost-based strategy (what the paper's benchmark was meant to
//! enable), and validates each choice by actually executing it.
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::planner::{choose_join, choose_selection, Strategy};
use treequery::query::{JoinAlgo, ResultMode, TreeJoinSpec};
use treequery::workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn spec(db: &treequery::workload::Database, pat: u32, prov: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov),
        child_key_limit: db.patient_selectivity_key(pat),
        result_mode: ResultMode::Transient,
    }
}

/// The estimator profile for a built database (the same derivation the
/// bench harness uses).
fn profile(db: &treequery::workload::Database) -> treequery::query::estimator::PhysicalProfile {
    let disk = db.store.stack().disk();
    let (pp, cp) = match db.config.organization {
        Organization::ClassClustered => (
            disk.file_len(disk.file_by_name("providers").unwrap()) as u64,
            disk.file_len(disk.file_by_name("patients").unwrap()) as u64,
        ),
        _ => {
            let shared = disk.file_len(disk.file_by_name("objects").unwrap()) as u64;
            (shared, shared)
        }
    };
    treequery::query::estimator::PhysicalProfile {
        parents_total: db.provider_count,
        children_total: db.patient_count,
        parent_scan_pages: pp,
        child_scan_pages: cp,
        parent_index_clustered: db.idx_provider_upin.clustered,
        child_index_clustered: db.idx_patient_mrn.clustered,
        composition: db.config.organization == Organization::Composition,
        mean_fanout: db.patient_count as f64 / db.provider_count as f64,
        overflow_pages_per_parent: 0.0,
        client_cache_pages: db.config.cache.client_pages as u64,
    }
}

fn execute(db: &mut treequery::workload::Database, algo: JoinAlgo, s: &TreeJoinSpec) -> f64 {
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    let s = s.clone();
    let (_, secs) = db.measure_cold(move |db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &s, &JoinOptions::default(), false)
    });
    secs
}

fn main() {
    println!("heuristic vs cost-based join planning (1:3 database, scale 1/100)\n");
    for org in [Organization::ClassClustered, Organization::Composition] {
        let mut db = build(&BuildConfig::scaled(DbShape::Db2, org, 100));
        let prof = profile(&db);
        let model = db.store.stack().model().clone();
        println!("organization: {}", org.label());
        println!("  sel(pat,prov)   heuristic            cost-based           actual best");
        for (pat, prov) in [(10u32, 10u32), (10, 90), (90, 10), (90, 90)] {
            let s = spec(&db, pat, prov);
            let h = choose_join(
                Strategy::Heuristic,
                &prof,
                &model,
                prov as f64 / 100.0,
                pat as f64 / 100.0,
            );
            let c = choose_join(
                Strategy::CostBased,
                &prof,
                &model,
                prov as f64 / 100.0,
                pat as f64 / 100.0,
            );
            // Execute every candidate to find the true best.
            let mut actual: Vec<(JoinAlgo, f64)> = JoinAlgo::all()
                .into_iter()
                .map(|a| (a, execute(&mut db, a, &s)))
                .collect();
            actual.sort_by(|a, b| a.1.total_cmp(&b.1));
            let h_actual = actual.iter().find(|(a, _)| *a == h.algo).unwrap().1;
            let c_actual = actual.iter().find(|(a, _)| *a == c.algo).unwrap().1;
            println!(
                "  ({pat:>2},{prov:>2})         {:<6} {:>7.1}s      {:<6} {:>7.1}s      {:<6} {:>7.1}s",
                h.algo.label(),
                h_actual,
                c.algo.label(),
                c_actual,
                actual[0].0.label(),
                actual[0].1,
            );
        }
        println!();
    }
    // And the Figure 7 lesson, as a planner decision.
    let model = tq_pagestore::CostModel::sparc20();
    let sel = choose_selection(
        Strategy::CostBased,
        2_000_000,
        33_000,
        8_192,
        &model,
        0.9,
        true,
    );
    let heu = choose_selection(
        Strategy::Heuristic,
        2_000_000,
        33_000,
        8_192,
        &model,
        0.9,
        true,
    );
    println!(
        "selection at 90% selectivity: heuristic picks {:?} ({:.0}s est), \
         cost-based picks {:?} ({:.0}s est)",
        heu.path, heu.estimated_secs, sel.path, sel.estimated_secs
    );
    println!("— the sorted index scan the authors discovered by accident.");
}
