//! The §4.4 motivating scenario, end to end: a doctor retires.
//!
//! "Suppose that we have a collection containing all patients living
//! in Paris, indexed by their primary care provider attribute. Now,
//! suppose that one doctor retires and that we want to assign 'nil'
//! to all his/her patients (some of whom live in Paris). How will the
//! system know which index to update unless each patient carries that
//! information?"
//!
//! This example builds the clinic database, declares a Paris
//! sub-collection with its own index, retires one doctor, and shows
//! the header-driven maintenance doing exactly the right amount of
//! work: the Paris index is updated only for the retiree's Parisian
//! patients, and never consulted for the rest.
//!
//! ```sh
//! cargo run --release --example doctor_retires
//! ```

use treequery::index::BTreeIndex;
use treequery::objstore::{Rid, Value};
use treequery::query::maintenance::{update_with_indexes, MaintainedIndex};
use treequery::workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn main() {
    // A scaled 1:3 clinic with index memberships recorded in headers.
    let mut cfg = BuildConfig::scaled(DbShape::Db2, Organization::ClassClustered, 500);
    cfg.register_memberships = true;
    let mut db = build(&cfg);
    println!(
        "clinic: {} providers, {} patients",
        db.provider_count, db.patient_count
    );

    // Every 7th patient "lives in Paris"; index them by age (index 10).
    let mut patients = Vec::new();
    let mut cursor = db.store.collection_cursor("Patients");
    while let Some(rid) = cursor.next(db.store.stack_mut()) {
        patients.push(rid);
    }
    let paris: Vec<Rid> = patients.iter().copied().step_by(7).collect();
    let mut paris_entries: Vec<(i64, Rid)> = paris
        .iter()
        .map(|&rid| {
            let p = db.store.fetch(rid);
            let age = p.object.values[patient_attr::AGE].as_int().unwrap() as i64;
            db.store.unref(p.rid);
            (age, rid)
        })
        .collect();
    paris_entries.sort_unstable_by_key(|&(k, _)| k);
    db.store
        .create_collection("ParisPatients", db.derby.patient, &paris);
    let mut idx_paris_age = BTreeIndex::bulk_build(
        db.store.stack_mut(),
        10,
        "idx.paris.age",
        false,
        &paris_entries,
    );
    let report = db.store.register_index_on_collection("ParisPatients", 10);
    println!(
        "ParisPatients: {} members, index 10 registered in their headers ({} relocations)",
        paris.len(),
        report.relocated
    );

    // Find a retiring doctor with at least one Parisian patient.
    let paris_set: std::collections::HashSet<Rid> = paris.iter().copied().collect();
    let mut c = db.store.collection_cursor("Providers");
    let mut retiree = None;
    let mut affected = Vec::new();
    let mut doc_no = 0;
    while let Some(rid) = c.next(db.store.stack_mut()) {
        let doc = db.store.fetch(rid);
        let clients = doc.object.values[provider_attr::CLIENTS]
            .as_set()
            .unwrap()
            .clone();
        db.store.unref(doc.rid);
        let mut members = db.store.set_cursor(&clients);
        let mut list = Vec::new();
        while let Some(m) = members.next(db.store.stack_mut()) {
            list.push(m);
        }
        if list.iter().any(|m| paris_set.contains(m)) {
            retiree = Some(rid);
            affected = list;
            break;
        }
        doc_no += 1;
    }
    let _retiree = retiree.expect("some doctor treats a Parisian");
    let parisians = affected.iter().filter(|m| paris_set.contains(m)).count();
    println!(
        "\ndoctor #{doc_no} retires; {} patients get pcp = nil and an annual age bump \
         ({parisians} of them live in Paris)",
        affected.len()
    );

    // Retire: pcp -> nil, age += 1. The mrn index (id 2) and num index
    // (id 3) keys don't change; the Paris age index (id 10) must be
    // re-keyed — but only for patients whose header lists it.
    let mut idx_mrn = db.idx_patient_mrn.clone();
    let mut idx_num = db.idx_patient_num.clone();
    let mut total_updated = 0;
    let mut total_skipped = 0;
    for rid in &affected {
        let old = db.store.fetch(*rid);
        let mut values = old.object.values.clone();
        let canonical = old.rid;
        db.store.unref(canonical);
        values[patient_attr::PCP] = Value::Ref(Rid::nil());
        let age = values[patient_attr::AGE].as_int().unwrap();
        values[patient_attr::AGE] = Value::Int(age + 1);
        let mut registry = [
            MaintainedIndex {
                index: &mut idx_mrn,
                key_attr: patient_attr::MRN,
            },
            MaintainedIndex {
                index: &mut idx_num,
                key_attr: patient_attr::NUM,
            },
            MaintainedIndex {
                index: &mut idx_paris_age,
                key_attr: patient_attr::AGE,
            },
        ];
        let r = update_with_indexes(&mut db.store, &mut registry, canonical, &values);
        total_updated += r.indexes_updated;
        total_skipped += r.indexes_skipped;
    }
    println!(
        "maintenance: {total_updated} index entries re-keyed, \
         {total_skipped} registry consultations skipped via headers"
    );

    // Verify: no Paris-index entry still references a retired patient
    // under its old age, and the nil assignments took.
    let mut dangling = 0;
    for rid in &affected {
        let p = db.store.fetch(*rid);
        assert!(p.object.values[patient_attr::PCP]
            .as_ref_rid()
            .unwrap()
            .is_nil());
        let age = p.object.values[patient_attr::AGE].as_int().unwrap() as i64;
        let old_age = age - 1;
        if idx_paris_age
            .lookup(db.store.stack_mut(), old_age)
            .contains(&p.rid)
        {
            dangling += 1;
        }
        db.store.unref(p.rid);
    }
    println!("verification: pcp nil everywhere, {dangling} dangling Paris-index entries");
    assert_eq!(dangling, 0);
    println!("\nthe header index list did its job — O(own indexes), not O(all indexes).");
}
