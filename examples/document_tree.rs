//! Queries over document trees — the paper's opening motivation.
//!
//! "Hierarchical and graph structures are very popular nowadays,
//! thanks to XML..." This example builds a *document* tree (documents
//! with sections) on a custom schema — no Derby anywhere — and asks
//! the two §1 questions:
//!
//! 1. follow links node-to-node ("the title of the first section of a
//!    given document"), and
//! 2. associative access ("the titles of a large collection of
//!    documents' sections"), evaluated by all four join algorithms.
//!
//! ```sh
//! cargo run --release --example document_tree
//! ```

use treequery::index::BTreeIndex;
use treequery::objstore::{AttrType, ClassId, ObjectStore, Rid, Schema, SetValue, Value};
use treequery::pagestore::{CacheConfig, CostModel, StorageStack};
use treequery::query::join::{run_join, JoinContext, JoinOptions};
use treequery::query::{JoinAlgo, ResultMode, TreeJoinSpec};

// Document attributes.
const DOC_TITLE: usize = 0;
const DOC_ID: usize = 1;
const DOC_SECTIONS: usize = 2;
// Section attributes.
const SEC_TITLE: usize = 0;
const SEC_ID: usize = 1;
const SEC_WORDS: usize = 2;
const SEC_DOC: usize = 3;

fn main() {
    // Schema: Document 1-N Section (sections stored next to their
    // document — composition clustering, the natural layout for XML).
    let mut schema = Schema::new();
    let document = schema.add_class(
        "Document",
        vec![
            ("title", AttrType::Str),
            ("doc_id", AttrType::Int),
            ("sections", AttrType::SetRef(ClassId(1))),
        ],
    );
    let section = schema.add_class(
        "Section",
        vec![
            ("title", AttrType::Str),
            ("sec_id", AttrType::Int),
            ("words", AttrType::Int),
            ("document", AttrType::Ref(document)),
        ],
    );
    let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
    let mut store = ObjectStore::new(schema, stack);
    let file = store.create_file("corpus");

    // Load 2,000 documents x 8 sections, composition-placed.
    let (n_docs, fanout) = (2_000i64, 8i64);
    let mut doc_rids = Vec::new();
    let mut sec_rids = Vec::new();
    let mut sec_id = 0i64;
    for d in 0..n_docs {
        let placeholder = SetValue::Inline(vec![Rid::nil(); fanout as usize]);
        let doc = store.insert(
            file,
            document,
            &[
                Value::Str(format!("document-{d:05}")),
                Value::Int(d as i32),
                Value::Set(placeholder),
            ],
            true,
        );
        let mut children = Vec::new();
        for s in 0..fanout {
            let rid = store.insert(
                file,
                section,
                &[
                    Value::Str(format!("doc{d}-section-{s}")),
                    Value::Int(sec_id as i32),
                    Value::Int(((sec_id * 37) % 2000) as i32),
                    Value::Ref(doc),
                ],
                true,
            );
            children.push(rid);
            sec_rids.push((sec_id, rid));
            sec_id += 1;
        }
        store.update(
            doc,
            &[
                Value::Str(format!("document-{d:05}")),
                Value::Int(d as i32),
                Value::Set(SetValue::Inline(children)),
            ],
        );
        doc_rids.push((d, doc));
    }
    store.create_collection(
        "Documents",
        document,
        &doc_rids.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
    );
    store.create_collection(
        "Sections",
        section,
        &sec_rids.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
    );
    let idx_doc = BTreeIndex::bulk_build(store.stack_mut(), 1, "idx.doc_id", true, &doc_rids);
    let idx_sec = BTreeIndex::bulk_build(store.stack_mut(), 2, "idx.sec_id", false, &sec_rids);
    store.cold_restart();
    store.reset_metrics();
    println!(
        "corpus: {n_docs} documents x {fanout} sections in {} pages\n",
        store.stack().disk().file_len(file)
    );

    // --- Access 1: pure navigation to one node. -----------------------
    let doc = store.fetch(doc_rids[1234].1);
    let sections = doc.object.values[DOC_SECTIONS].as_set().unwrap().clone();
    let mut cursor = store.set_cursor(&sections);
    let first = cursor.next(store.stack_mut()).expect("has sections");
    let sec = store.fetch(first);
    println!(
        "navigate: first section of {:?} is {:?} ({} page read(s) — composition keeps it adjacent)",
        doc.object.values[DOC_TITLE].as_str().unwrap(),
        sec.object.values[SEC_TITLE].as_str().unwrap(),
        store.stats().d2sc_read_pages
    );
    let _ = (SEC_ID, SEC_WORDS, SEC_DOC, DOC_ID); // documented layout
    store.unref(sec.rid);
    store.unref(doc.rid);

    // --- Access 2: a large associative query. -------------------------
    // "Sections of the first tenth of the corpus, first half by id":
    // Document.doc_id < 200 and Section.sec_id < 8000.
    let spec = TreeJoinSpec {
        parents: "Documents".into(),
        children: "Sections".into(),
        parent_key: DOC_ID,
        parent_set: DOC_SECTIONS,
        child_key: SEC_ID,
        child_parent: SEC_DOC,
        parent_project: DOC_TITLE,
        child_project: SEC_ID,
        parent_key_limit: n_docs / 10,
        child_key_limit: n_docs * fanout / 2,
        result_mode: ResultMode::Transient,
    };
    println!("\nassociative: sections of a tenth of the corpus, four ways:");
    for algo in JoinAlgo::all() {
        store.cold_restart();
        store.reset_metrics();
        let mut ctx = JoinContext {
            store: &mut store,
            parent_index: &idx_doc,
            child_index: &idx_sec,
        };
        let report = run_join(algo, &mut ctx, &spec, &JoinOptions::default(), false);
        store.end_of_query();
        println!(
            "  {:<6} {:>8.2}s  ({} tuples, {} pages read)",
            algo.label(),
            store.clock().elapsed_secs(),
            report.results,
            store.stats().d2sc_read_pages
        );
    }
    println!("\nNL navigates the composition layout and wins — the paper's Figure 13.");
}
