#!/usr/bin/env bash
# Harness performance trajectory: times a fixed figure set and records
# wall clock + peak RSS per run in BENCH_harness.json.
#
# The figure set is fig06 (selection), fig11_14 (the join grid, the
# paper's headline figure), and fig_multiway (N-way chain plan
# quality) at two scales:
#
#   * smoke scale (TQ_BENCH_SMOKE_SCALE, default 200) — seconds per run,
#     catches gross regressions in CI;
#   * paper scale (TQ_BENCH_PAPER_SCALE, default 1 = the paper's 1M/3M
#     object bases) — the workload the copy-on-write snapshot work is
#     aimed at.
#
# Each (figure, scale) pair runs at TQ_JOBS=1 and TQ_JOBS=<ncores>
# (deduplicated on single-core machines). Figure *output* is
# byte-identical at any job count — this script only measures the host
# side: wall clock and peak RSS.
#
# A closed-loop serving run (the tq-server load generator) is also
# recorded, into BENCH_serve.json: throughput, latency percentiles,
# and shed rate at TQ_CONCURRENCY=8 over <ncores> workers.
#
# Usage:  scripts/bench.sh [out.json]          (default: BENCH_harness.json)
#   TQ_BENCH_SMOKE_SCALE=200 TQ_BENCH_PAPER_SCALE=1 scripts/bench.sh
#   TQ_BENCH_SKIP_PAPER=1 scripts/bench.sh     (CI: smoke scale only)
#   TQ_BATCH=1 scripts/bench.sh                (time the scalar path)
#   scripts/bench.sh --micro                   (operator-level microbenches
#                                               only; no JSON emitted)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--micro" ]; then
    exec cargo bench -p tq-bench
fi

OUT="${1:-BENCH_harness.json}"
SMOKE_SCALE="${TQ_BENCH_SMOKE_SCALE:-200}"
PAPER_SCALE="${TQ_BENCH_PAPER_SCALE:-1}"
NCORES="$(nproc)"
# The executor batch size the figure runs use (and record): the env
# override if set, else the engine default.
BATCH="${TQ_BATCH:-1024}"

echo "== build (release) =="
cargo build --release -p tq-bench

# Runs one figure binary, polling /proc/<pid>/status for VmHWM (peak
# RSS, monotonic) while it runs. Appends one JSON record to $RECORDS.
RECORDS=""
run_one() {
    local name="$1" scale="$2" jobs="$3"
    shift 3
    echo "-- $name scale=$scale jobs=$jobs"
    local t0 t1 pid hwm_kb=0 line
    t0=$(date +%s%N)
    TQ_SCALE="$scale" TQ_JOBS="$jobs" TQ_BATCH="$BATCH" "$@" >/dev/null 2>&1 &
    pid=$!
    while kill -0 "$pid" 2>/dev/null; do
        if line=$(grep VmHWM "/proc/$pid/status" 2>/dev/null); then
            line=${line//[!0-9]/}
            [ -n "$line" ] && [ "$line" -gt "$hwm_kb" ] && hwm_kb=$line
        fi
        sleep 0.1
    done
    wait "$pid"
    t1=$(date +%s%N)
    local wall_ms=$(( (t1 - t0) / 1000000 ))
    echo "   wall=${wall_ms}ms peak_rss=${hwm_kb}kB"
    RECORDS+="    {\"figure\": \"$name\", \"scale\": $scale, \"jobs\": $jobs,"
    RECORDS+=" \"batch\": $BATCH, \"wall_ms\": $wall_ms, \"peak_rss_kb\": $hwm_kb},"$'\n'
}

JOBS_SET="1"
[ "$NCORES" -gt 1 ] && JOBS_SET="1 $NCORES"

SCALES="$SMOKE_SCALE"
if [ "${TQ_BENCH_SKIP_PAPER:-0}" = "0" ]; then
    SCALES="$SMOKE_SCALE $PAPER_SCALE"
fi

for scale in $SCALES; do
    for jobs in $JOBS_SET; do
        run_one fig06 "$scale" "$jobs" ./target/release/fig06_selection
        run_one fig11_14 "$scale" "$jobs" \
            ./target/release/fig11_14_joins --db db2 --org class
        run_one fig_multiway "$scale" "$jobs" \
            ./target/release/fig_multiway --db db2 --org class
    done
done

echo "== serving run (loadgen, TQ_CONCURRENCY=8, ${TQ_DURATION:-2}s) =="
TQ_SCALE="$SMOKE_SCALE" TQ_JOBS="$NCORES" TQ_BATCH="$BATCH" \
    TQ_CONCURRENCY="${TQ_CONCURRENCY:-8}" \
    TQ_DURATION="${TQ_DURATION:-2}" \
    ./target/release/loadgen --json BENCH_serve.json

echo "== sharded serving runs (TQ_SHARDS=1,2,4) -> BENCH_sharded.json =="
# The same closed loop over the scatter-gather router at 1, 2, and 4
# engine shards (total worker budget fixed at <ncores>): BENCH_sharded.json
# is a JSON array of the per-shard-count loadgen records, the read-path
# scaling curve over BENCH_serve.json's single-node baseline.
SHARD_RECORDS=""
for S in 1 2 4; do
    TQ_SCALE="$SMOKE_SCALE" TQ_JOBS="$NCORES" TQ_BATCH="$BATCH" \
        TQ_CONCURRENCY="${TQ_CONCURRENCY:-8}" \
        TQ_DURATION="${TQ_DURATION:-2}" \
        TQ_SHARDS="$S" \
        ./target/release/loadgen --json BENCH_sharded_run.json
    SHARD_RECORDS+="$(cat BENCH_sharded_run.json),"$'\n'
done
rm -f BENCH_sharded_run.json
{
    echo "["
    printf '%s' "${SHARD_RECORDS%,$'\n'}"
    echo ""
    echo "]"
} > BENCH_sharded.json
echo "wrote BENCH_sharded.json"

echo "== intra-query parallel scaling (degrees 1/2/4) -> BENCH_parallel.json =="
# fig_parallel times every join algorithm morsel-parallel at degrees
# 1/2/4 — CPU and wall clock, min of 3 interleaved rounds — and the
# record keeps host_cores so a single-core host's flat (or inverted)
# curve reads as physics, not regression. Two served closed loops at
# low concurrency ride along, serial vs degree-4 queries: on multi-core
# hosts the degree-4 run shows the p99 win for heavy joins.
PAR_SCALE="$SMOKE_SCALE"
[ "${TQ_BENCH_SKIP_PAPER:-0}" = "0" ] && PAR_SCALE="$PAPER_SCALE"
TQ_SCALE="$PAR_SCALE" TQ_BATCH="$BATCH" \
    ./target/release/fig_parallel --json BENCH_parallel_fig.json
PAR_SERVE=""
for D in 1 4; do
    TQ_SCALE="$SMOKE_SCALE" TQ_JOBS="$NCORES" TQ_BATCH="$BATCH" \
        TQ_CONCURRENCY=2 TQ_DURATION="${TQ_DURATION:-2}" TQ_PARALLEL="$D" \
        ./target/release/loadgen --json BENCH_parallel_run.json
    PAR_SERVE+="$(cat BENCH_parallel_run.json),"$'\n'
done
rm -f BENCH_parallel_run.json
{
    echo "{"
    echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"batch\": $BATCH,"
    printf '  "intra_query": '
    sed '$ s/}$/},/' BENCH_parallel_fig.json
    echo "  \"served\": ["
    printf '%s' "${PAR_SERVE%,$'\n'}"
    echo ""
    echo "  ]"
    echo "}"
} > BENCH_parallel.json
rm -f BENCH_parallel_fig.json
echo "wrote BENCH_parallel.json"

{
    echo "{"
    echo "  \"host_cores\": $NCORES,"
    echo "  \"batch\": $BATCH,"
    echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"runs\": ["
    printf '%s' "${RECORDS%,$'\n'}"
    echo ""
    echo "  ]"
    echo "}"
} > "$OUT"
echo "wrote $OUT"
