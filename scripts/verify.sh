#!/usr/bin/env bash
# Full verification: build, tests, lints, and a parallel smoke figure.
#
# The smoke step runs one join figure at reduced scale with two
# workers — it exercises the worker pool, the database clone path and
# the figure printers end to end, and fails loudly if any of them
# regress.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== formatting =="
cargo fmt --check

echo "== raw fetch/release gate (joins must use the executor layer) =="
# Join modules compose ExecContext operators; pinning objects by hand
# (store.fetch / store.release) would bypass the RAII guards and the
# per-operator counter attribution.
if grep -rnE '\.(fetch|release)\(' crates/core/src/join/; then
    echo "error: raw fetch()/release() calls under crates/core/src/join/" >&2
    exit 1
fi

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== copy-on-write snapshot tests (release) =="
cargo test --release -q -p tq-pagestore --test prop_cow
cargo test --release -q -p tq-bench --test cow_sharing

echo "== determinism oracle at paper-relevant scale (release) =="
cargo test --release -q -p tq-bench --test parallel_matches_serial -- --ignored

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== smoke figure (TQ_SCALE=200, TQ_JOBS=2) =="
SMOKE_T0=$(date +%s%N)
TQ_SCALE=200 TQ_JOBS=2 \
    cargo run --release -p tq-bench --bin fig11_14_joins -- --db db2 --org class
SMOKE_T1=$(date +%s%N)
echo "smoke figure wall clock: $(( (SMOKE_T1 - SMOKE_T0) / 1000000 )) ms"

echo "== smoke multiway (TQ_SCALE=200, TQ_JOBS=2, all planner policies) =="
# The plan-quality figure under each ordering policy: all three must
# return the same result counts per (depth, cell) — order changes time,
# never answers. An invalid TQ_PLANNER must exit 2 (env-knob contract).
MW_REF=""
for P in estimate simpli syntactic; do
    MW_OUT=$(TQ_SCALE=200 TQ_JOBS=2 TQ_PLANNER="$P" \
        ./target/release/fig_multiway --db db2 --org class)
    MW_COUNTS=$(echo "$MW_OUT" | grep -o 'results=[0-9]*' || true)
    [ -n "$MW_COUNTS" ] \
        || { echo "error: fig_multiway ($P) printed no result counts" >&2; exit 1; }
    if [ -z "$MW_REF" ]; then
        MW_REF="$MW_COUNTS"
        echo "fig_multiway result counts ($P): $(echo "$MW_COUNTS" | tr '\n' ' ')"
    elif [ "$MW_COUNTS" != "$MW_REF" ]; then
        echo "error: fig_multiway ($P) result counts diverge from estimate's" >&2
        exit 1
    else
        echo "fig_multiway result counts ($P): agree"
    fi
done
if TQ_PLANNER=greedy ./target/release/fig_multiway --db db2 --org class \
    >/dev/null 2>&1; then
    echo "error: invalid TQ_PLANNER must be rejected" >&2
    exit 1
elif [ $? -ne 2 ]; then
    echo "error: invalid TQ_PLANNER must exit 2" >&2
    exit 1
fi
echo "invalid TQ_PLANNER rejected with exit 2"

echo "== smoke serve (TQ_SCALE=200, TQ_CONCURRENCY=4, 2s) =="
# loadgen itself exits non-zero on any serving error or leaked handle;
# on top of that, check the latency CSV on stdout is well formed.
SERVE_CSV=$(TQ_SCALE=200 TQ_JOBS=2 TQ_CONCURRENCY=4 TQ_DURATION=2 \
    cargo run --release -p tq-bench --bin loadgen)
echo "$SERVE_CSV"
echo "$SERVE_CSV" | grep -q \
    '^label,concurrency,workers,queue_depth,duration_ns,ok,shed,shed_router,deadline_exceeded,errors,' \
    || { echo "error: loadgen latency-CSV header missing" >&2; exit 1; }
SERVE_ROWS=$(echo "$SERVE_CSV" | awk -F, '/^label,/{h=1;next} h && NF==18' | wc -l)
[ "$SERVE_ROWS" -eq 1 ] \
    || { echo "error: expected 1 well-formed latency-CSV row, got $SERVE_ROWS" >&2; exit 1; }
echo "$SERVE_CSV" | awk -F, '/^label,/{h=1;next} h { exit !($11 == 0 && $12 == 0) }' \
    || { echo "error: read-only serve reported commits/aborts" >&2; exit 1; }
# Unsharded runs shed only at the (single) server's queue: the
# router-edge column must be zero.
echo "$SERVE_CSV" | awk -F, '/^label,/{h=1;next} h { exit !($8 == 0) }' \
    || { echo "error: unsharded serve reported router-edge sheds" >&2; exit 1; }

echo "== smoke serve, mixed writes (TQ_WRITE_MIX=30) =="
# Same loadgen gate under a 30% write mix: still zero errors and zero
# leaked handles (loadgen exits non-zero otherwise), at least one
# commit actually published, and the abort column well formed (aborts
# never exceed commit attempts; both land in their own CSV columns).
MIX_CSV=$(TQ_SCALE=200 TQ_JOBS=2 TQ_CONCURRENCY=4 TQ_DURATION=2 TQ_WRITE_MIX=30 \
    cargo run --release -p tq-bench --bin loadgen)
echo "$MIX_CSV"
MIX_ROWS=$(echo "$MIX_CSV" | awk -F, '/^label,/{h=1;next} h && NF==18' | wc -l)
[ "$MIX_ROWS" -eq 1 ] \
    || { echo "error: expected 1 well-formed mixed latency-CSV row, got $MIX_ROWS" >&2; exit 1; }
echo "$MIX_CSV" | awk -F, '/^label,/{h=1;next} h { exit !($10 == 0 && $11 > 0 && $12 >= 0) }' \
    || { echo "error: mixed serve must commit writes without errors" >&2; exit 1; }

echo "== smoke serve, sharded (TQ_SHARDS=2) =="
# Two engine shards behind the scatter-gather router, same closed loop:
# zero errors and zero leaked handles (loadgen exits non-zero
# otherwise), a well-formed 18-column row, and shed accounting that
# distinguishes the router edge from the shard queues (router-edge
# sheds are a subset of the total). An invalid TQ_SHARDS must exit 2.
SHARD_CSV=$(TQ_SCALE=200 TQ_JOBS=2 TQ_CONCURRENCY=4 TQ_DURATION=2 TQ_SHARDS=2 \
    cargo run --release -p tq-bench --bin loadgen)
echo "$SHARD_CSV"
SHARD_ROWS=$(echo "$SHARD_CSV" | awk -F, '/^label,/{h=1;next} h && NF==18' | wc -l)
[ "$SHARD_ROWS" -eq 1 ] \
    || { echo "error: expected 1 well-formed sharded latency-CSV row, got $SHARD_ROWS" >&2; exit 1; }
echo "$SHARD_CSV" | awk -F, '/^label,/{h=1;next} h { exit !($8 <= $7 && $10 == 0) }' \
    || { echo "error: sharded serve errored or mis-attributed sheds" >&2; exit 1; }
if TQ_SHARDS=banana ./target/release/loadgen >/dev/null 2>&1; then
    echo "error: invalid TQ_SHARDS must be rejected" >&2
    exit 1
elif [ $? -ne 2 ]; then
    echo "error: invalid TQ_SHARDS must exit 2" >&2
    exit 1
fi
echo "invalid TQ_SHARDS rejected with exit 2"

echo "== sharded differential oracle (release) =="
# Sharded results byte-identical to the unsharded engine for every
# join algorithm × clustering at 1/2/4 shards, and the router's merged
# Stats exactly merge_stats over the per-shard truth.
cargo test --release -q -p tq-router --test sharded_equivalence

echo "== parallel smoke: TQ_PARALLEL=1 is the serial path (golden stdout) =="
# Degree 1 short-circuits to the serial executor, so figure stdout must
# be byte-identical with TQ_PARALLEL unset vs set to 1 — the knob may
# change when work happens, never what is printed. An invalid
# TQ_PARALLEL must exit 2 (env-knob contract).
PAR_REF=$(TQ_SCALE=200 TQ_JOBS=2 \
    ./target/release/fig11_14_joins --db db2 --org class)
PAR_ONE=$(TQ_SCALE=200 TQ_JOBS=2 TQ_PARALLEL=1 \
    ./target/release/fig11_14_joins --db db2 --org class)
if [ "$PAR_REF" != "$PAR_ONE" ]; then
    echo "error: TQ_PARALLEL=1 changed fig11_14 stdout" >&2
    diff <(echo "$PAR_REF") <(echo "$PAR_ONE") >&2 || true
    exit 1
fi
echo "fig11_14 stdout byte-identical at TQ_PARALLEL=1"
if TQ_PARALLEL=banana ./target/release/loadgen >/dev/null 2>&1; then
    echo "error: invalid TQ_PARALLEL must be rejected" >&2
    exit 1
elif [ $? -ne 2 ]; then
    echo "error: invalid TQ_PARALLEL must exit 2" >&2
    exit 1
fi
echo "invalid TQ_PARALLEL rejected with exit 2"

echo "== parallel differential oracle (release, degrees 2/4) =="
# Morsel-parallel runs against the serial engine for every join
# algorithm × clustering: result counts, full pair lists, trace shape,
# per-row handle_gets, Emit rows, and the attribution sums must match
# at the raw, Stat, served, and sharded-composed layers; the fault
# suite pins the typed panic/deadline paths with zero leaked handles.
cargo test --release -q -p tq-bench --test parallel_equivalence
cargo test --release -q -p tq-bench --test parallel_faults

echo "== perf gate: paper-scale fig11_14 vs committed trajectory (CPU) =="
# CPU time (user+sys, min of 3 rounds) of the paper's headline figure
# must stay within 15% of the best committed cpu_ms_min3 record
# (figure=fig11_14, paper scale, TQ_JOBS=1). Wall clock swings ±60%
# with neighbour load on shared hosts (BENCH_vectorized.json documents
# the measurement) — CPU time is the noise-robust signal. Skippable on
# hosts with a different CPU class: TQ_SKIP_PERF_GATE=1.
if [ "${TQ_SKIP_PERF_GATE:-0}" = "1" ]; then
    echo "skipped (TQ_SKIP_PERF_GATE=1)"
else
    BASE_MS=$(grep -h '"figure": "fig11_14"' BENCH_*.json 2>/dev/null \
        | grep '"scale": 1,' | grep '"jobs": 1,' | grep '"cpu_ms_min3":' \
        | sed -E 's/.*"cpu_ms_min3": ([0-9]+).*/\1/' \
        | sort -n | head -1)
    if [ -z "${BASE_MS:-}" ]; then
        echo "no committed paper-scale fig11_14 cpu_ms_min3 record;" \
             "nothing to gate"
    else
        CUR_MS=""
        for _ in 1 2 3; do
            T=$( { TIMEFORMAT='%U %S'; time TQ_SCALE=1 TQ_JOBS=1 \
                ./target/release/fig11_14_joins --db db2 --org class \
                >/dev/null 2>&1; } 2>&1 | tail -n 1 )
            MS=$(awk -v u="${T% *}" -v s="${T#* }" \
                'BEGIN { printf "%d", (u + s) * 1000 }')
            [ -z "$CUR_MS" ] || [ "$MS" -lt "$CUR_MS" ] && CUR_MS=$MS
        done
        LIMIT_MS=$(( BASE_MS * 115 / 100 ))
        echo "paper fig11_14: ${CUR_MS} ms CPU (best committed ${BASE_MS} ms," \
             "limit ${LIMIT_MS} ms)"
        if [ "$CUR_MS" -gt "$LIMIT_MS" ]; then
            echo "error: paper-scale fig11_14 CPU time regressed >15% over" \
                 "the committed trajectory (TQ_SKIP_PERF_GATE=1 to bypass)" >&2
            exit 1
        fi
    fi
fi

echo "verify: OK"
