#!/usr/bin/env bash
# Full verification: build, tests, lints, and a parallel smoke figure.
#
# The smoke step runs one join figure at reduced scale with two
# workers — it exercises the worker pool, the database clone path and
# the figure printers end to end, and fails loudly if any of them
# regress.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== smoke figure (TQ_SCALE=200, TQ_JOBS=2) =="
TQ_SCALE=200 TQ_JOBS=2 \
    cargo run --release -p tq-bench --bin fig11_14_joins -- --db db2 --org class

echo "verify: OK"
